"""Similarity-based unsupervised record linking baseline.

Represents the "fuzzy similarity" family of record-linking systems discussed
in the related-work section: records are aligned purely by how many attribute
values they share (their overlap score), without learning any transformation
function.  The baseline uses a greedy one-to-one matching over descending
scores, which is what blocking + best-match strategies of tools like JedAI
boil down to when run without configuration.

It serves two purposes in the reproduction:

* a comparator for alignment accuracy under systematic value changes (it
  degrades as soon as several attributes are transformed), and
* a sanity check that Affidavit's additional machinery — function induction
  and the MDL cost — is what buys the improved alignments.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..dataio import Table
from ..dataio.values import is_missing


@dataclass(frozen=True)
class SimilarityLink:
    """One aligned pair with its overlap score."""

    source_id: int
    target_id: int
    score: int


@dataclass(frozen=True)
class SimilarityLinkingResult:
    """Alignment produced by the similarity linker."""

    links: Tuple[SimilarityLink, ...]
    deleted_source_ids: Tuple[int, ...]
    inserted_target_ids: Tuple[int, ...]

    @property
    def alignment(self) -> Dict[int, int]:
        return {link.source_id: link.target_id for link in self.links}

    @property
    def n_aligned(self) -> int:
        return len(self.links)


class SimilarityLinker:
    """Greedy one-to-one matching on attribute-overlap scores."""

    def __init__(self, *, min_score: int = 1, max_block_size: int = 100_000,
                 skip_missing: bool = True):
        if min_score < 1:
            raise ValueError(f"min_score must be >= 1, got {min_score}")
        self._min_score = min_score
        self._max_block_size = max_block_size
        self._skip_missing = skip_missing

    def link(self, source: Table, target: Table) -> SimilarityLinkingResult:
        """Align the two snapshots and report leftover records."""
        scores = self._pair_scores(source, target)
        ranked = sorted(
            scores.items(),
            key=lambda item: (-item[1], item[0][0], item[0][1]),
        )
        used_sources: set = set()
        used_targets: set = set()
        links: List[SimilarityLink] = []
        for (source_id, target_id), score in ranked:
            if score < self._min_score:
                break
            if source_id in used_sources or target_id in used_targets:
                continue
            used_sources.add(source_id)
            used_targets.add(target_id)
            links.append(SimilarityLink(source_id, target_id, score))

        deleted = tuple(
            source_id for source_id in range(source.n_rows) if source_id not in used_sources
        )
        inserted = tuple(
            target_id for target_id in range(target.n_rows) if target_id not in used_targets
        )
        return SimilarityLinkingResult(
            links=tuple(links),
            deleted_source_ids=deleted,
            inserted_target_ids=inserted,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _pair_scores(self, source: Table, target: Table) -> Dict[Tuple[int, int], int]:
        scores: Dict[Tuple[int, int], int] = defaultdict(int)
        for attribute in source.schema:
            source_index: Dict[str, List[int]] = defaultdict(list)
            for source_id, value in enumerate(source.column_view(attribute)):
                if self._skip_missing and is_missing(value):
                    continue
                source_index[value].append(source_id)
            target_index: Dict[str, List[int]] = defaultdict(list)
            for target_id, value in enumerate(target.column_view(attribute)):
                if self._skip_missing and is_missing(value):
                    continue
                target_index[value].append(target_id)
            for value, source_ids in source_index.items():
                target_ids = target_index.get(value)
                if not target_ids:
                    continue
                if len(source_ids) * len(target_ids) > self._max_block_size:
                    continue
                for source_id in source_ids:
                    for target_id in target_ids:
                        scores[(source_id, target_id)] += 1
        return scores
