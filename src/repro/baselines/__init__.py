"""Baselines: keyed diff (classic tools), similarity linking, trivial explanation.

The raw comparators live in their own modules; :mod:`.explainers` adapts
them to the session API's :class:`~repro.api.ExplainOutcome` behind the
:class:`~repro.baselines.explainers.Explainer` protocol — the interface
the strategy chain and the evaluation harness go through.  Code outside
this package should use the explainers, not the raw classes.
"""

from .keyed_diff import CellChange, KeyedDiff, KeyedDiffReport
from .similarity_linker import SimilarityLink, SimilarityLinker, SimilarityLinkingResult
from .trivial import TrivialBaselineResult, run_trivial_baseline
from .explainers import (
    BASELINE_EXPLAINERS,
    Explainer,
    KeyedDiffExplainer,
    SimilarityExplainer,
    TrivialExplainer,
    baseline_explainer,
)

__all__ = [
    "KeyedDiff",
    "KeyedDiffReport",
    "CellChange",
    "SimilarityLinker",
    "SimilarityLinkingResult",
    "SimilarityLink",
    "TrivialBaselineResult",
    "run_trivial_baseline",
    "Explainer",
    "KeyedDiffExplainer",
    "SimilarityExplainer",
    "TrivialExplainer",
    "BASELINE_EXPLAINERS",
    "baseline_explainer",
]
