"""Baselines: keyed diff (classic tools), similarity linking, trivial explanation."""

from .keyed_diff import CellChange, KeyedDiff, KeyedDiffReport
from .similarity_linker import SimilarityLink, SimilarityLinker, SimilarityLinkingResult
from .trivial import TrivialBaselineResult, run_trivial_baseline

__all__ = [
    "KeyedDiff",
    "KeyedDiffReport",
    "CellChange",
    "SimilarityLinker",
    "SimilarityLinkingResult",
    "SimilarityLink",
    "TrivialBaselineResult",
    "run_trivial_baseline",
]
