"""Primary-key based snapshot diff — the behaviour of classic comparison tools.

The commercial tools surveyed in the paper's related-work section (ApexSQL
Data Diff, Redgate SQL Data Compare, SQL Delta, ...) all align records via a
user-specified primary key and then report cell-level changes record by
record.  This baseline reproduces that behaviour so the evaluation can show
where it breaks down: when key values are reassigned between snapshots the
alignment silently degrades into spurious deletions/insertions, and the
generated change script never generalises to unseen records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dataio import Table
from ..linking.alignment import AlignmentPairs, greedy_alignment_from_values


@dataclass(frozen=True)
class CellChange:
    """One reported cell modification of an aligned record pair."""

    source_id: int
    target_id: int
    attribute: str
    old_value: str
    new_value: str


@dataclass(frozen=True)
class KeyedDiffReport:
    """The output of a primary-key diff."""

    key_attributes: Tuple[str, ...]
    alignment: Dict[int, int]
    deleted_source_ids: Tuple[int, ...]
    inserted_target_ids: Tuple[int, ...]
    cell_changes: Tuple[CellChange, ...]

    @property
    def n_aligned(self) -> int:
        return len(self.alignment)

    @property
    def n_changed_cells(self) -> int:
        return len(self.cell_changes)

    def description_length(self, n_attributes: int) -> int:
        """Length of the explicit change script the tool would emit.

        Inserted records are listed cell by cell; every changed cell of an
        aligned pair is listed with its old and new value.  This is the
        quantity the MDL cost of Affidavit's explanations is compared against
        in the baseline benchmark.
        """
        return n_attributes * len(self.inserted_target_ids) + 2 * len(self.cell_changes)

    def summary(self) -> str:
        return (
            f"keyed diff on {list(self.key_attributes)}: "
            f"{self.n_aligned} aligned, {len(self.deleted_source_ids)} deleted, "
            f"{len(self.inserted_target_ids)} inserted, {self.n_changed_cells} cell changes"
        )


class KeyedDiff:
    """Align records by equality on *key_attributes* and report cell changes."""

    def __init__(self, key_attributes: Sequence[str]):
        if not key_attributes:
            raise ValueError("at least one key attribute is required")
        self._key_attributes = tuple(key_attributes)

    @property
    def key_attributes(self) -> Tuple[str, ...]:
        return self._key_attributes

    def diff(self, source: Table, target: Table) -> KeyedDiffReport:
        """Compute the keyed diff of two snapshots sharing a schema."""
        for attribute in self._key_attributes:
            source.schema.index_of(attribute)
            target.schema.index_of(attribute)

        pairs: AlignmentPairs = greedy_alignment_from_values(
            source, target, self._key_attributes
        )
        alignment = dict(pairs)
        aligned_targets = set(alignment.values())

        deleted = tuple(
            source_id for source_id in range(source.n_rows) if source_id not in alignment
        )
        inserted = tuple(
            target_id for target_id in range(target.n_rows) if target_id not in aligned_targets
        )

        changes: List[CellChange] = []
        attributes = source.schema.attributes
        for source_id, target_id in alignment.items():
            source_row = source.row(source_id)
            target_row = target.row(target_id)
            for position, attribute in enumerate(attributes):
                if source_row[position] != target_row[position]:
                    changes.append(
                        CellChange(
                            source_id=source_id,
                            target_id=target_id,
                            attribute=attribute,
                            old_value=source_row[position],
                            new_value=target_row[position],
                        )
                    )
        return KeyedDiffReport(
            key_attributes=self._key_attributes,
            alignment=alignment,
            deleted_source_ids=deleted,
            inserted_target_ids=inserted,
            cell_changes=tuple(changes),
        )
