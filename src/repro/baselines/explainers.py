"""Baselines behind the session API: the :class:`Explainer` protocol.

The raw baselines (:mod:`.keyed_diff`, :mod:`.similarity_linker`,
:mod:`.trivial`) produce alignments and reports in their own vocabulary.
This module adapts them to the one result type every other front door
returns — :class:`~repro.api.outcome.ExplainOutcome` — so the strategy
chain can serve them as fallback tiers and the evaluation harness can
compare them through one interface.

Honesty over flattery: a valid :class:`~repro.core.Explanation` (Definition
3.5) requires its attribute functions to map every aligned source row
*exactly* onto its target row.  The baselines learn no functions, so their
outcomes carry identity functions and keep only the alignment pairs that
are exact matches — a pair whose cells changed becomes a deletion plus an
insertion.  That is precisely why these tools lose to the affidavit search
under systematic value changes, and the outcome's cost says so instead of
hiding it.  The raw alignment (including non-exact pairs) stays available
through :meth:`Explainer.align` for accuracy measurements.

Everything outside :mod:`repro.baselines` should go through this module
(or the strategy chain); a boundary test enforces that.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.cost import explanation_cost, trivial_explanation_cost
from ..core.explanation import Explanation, trivial_explanation
from ..core.instance import ProblemInstance
from ..api.budget import (
    CONFIDENCE_BASELINE,
    CONFIDENCE_TRIVIAL,
    TIER_KEYED_DIFF,
    TIER_SIMILARITY,
    TIER_TRIVIAL,
)
from ..api.outcome import ENGINE_BASELINE, ExplainOutcome, Provenance, Timings
from ..api.request import SCHEMA_VERSION, ExplainRequest
from ..functions import IDENTITY
from .keyed_diff import KeyedDiff, KeyedDiffReport
from .similarity_linker import SimilarityLinker
from .trivial import run_trivial_baseline


@runtime_checkable
class Explainer(Protocol):
    """Anything that can answer a problem instance with an outcome.

    ``name`` is the tier name the answer is attributed to, ``confidence``
    the label its provenance carries.  :meth:`align` exposes the raw record
    alignment (before the exact-match filter) for accuracy studies.
    """

    @property
    def name(self) -> str: ...

    @property
    def confidence(self) -> str: ...

    def align(self, instance: ProblemInstance) -> Dict[int, int]: ...

    def explain(self, instance: ProblemInstance, *,
                request: Optional[ExplainRequest] = None,
                load_seconds: float = 0.0) -> ExplainOutcome: ...


def _exact_match_explanation(instance: ProblemInstance,
                             alignment: Dict[int, int]) -> Explanation:
    """The valid explanation induced by *alignment* under identity functions:
    only exact-match pairs survive; changed pairs become delete + insert."""
    kept = {
        source_id: target_id
        for source_id, target_id in alignment.items()
        if instance.source.row(source_id) == instance.target.row(target_id)
    }
    aligned_targets = set(kept.values())
    return Explanation(
        functions={attribute: IDENTITY for attribute in instance.schema},
        alignment=kept,
        deleted_source_ids=tuple(
            source_id for source_id in range(instance.n_source_records)
            if source_id not in kept
        ),
        inserted_target_ids=tuple(
            target_id for target_id in range(instance.n_target_records)
            if target_id not in aligned_targets
        ),
    )


def _outcome(instance: ProblemInstance, explanation: Explanation, *,
             tier: str, confidence: str, elapsed_seconds: float,
             request: Optional[ExplainRequest],
             load_seconds: float) -> ExplainOutcome:
    alpha = 0.5  # the baselines have no α dial; cost at the paper's default
    provenance = Provenance(
        api_version=SCHEMA_VERSION if request is None else request.schema_version,
        engine=ENGINE_BASELINE,
        base_config=None if request is None else request.config,
        registry=(),
        instance_name=instance.name,
        n_source_records=instance.n_source_records,
        n_target_records=instance.n_target_records,
        n_attributes=instance.n_attributes,
        seed=0,
        tier=tier,
        confidence=confidence,
    )
    return ExplainOutcome(
        explanation=explanation,
        cost=explanation_cost(instance, explanation, alpha=alpha),
        trivial_cost=trivial_explanation_cost(instance, alpha=alpha),
        expansions=0,
        generated_states=0,
        cancelled=False,
        timings=Timings(
            load_seconds=load_seconds,
            search_seconds=elapsed_seconds,
            total_seconds=load_seconds + elapsed_seconds,
        ),
        provenance=provenance,
        idempotency_key=None if request is None else request.canonical_key(),
        request=request,
        instance=instance,
    )


class KeyedDiffExplainer:
    """The classic primary-key diff as an :class:`Explainer`.

    *key_attributes* defaults to auto-selection: the attribute whose source
    column has the most distinct values (ties broken by schema order) — the
    column a DBA would have declared the key.
    """

    name = TIER_KEYED_DIFF
    confidence = CONFIDENCE_BASELINE

    def __init__(self, key_attributes: Optional[Sequence[str]] = None):
        self._key_attributes = None if key_attributes is None else tuple(key_attributes)

    def keys_for(self, instance: ProblemInstance) -> Tuple[str, ...]:
        if self._key_attributes is not None:
            return self._key_attributes
        best = max(
            instance.schema.attributes,
            key=lambda a: len(set(instance.source.column_view(a))),
        )
        return (best,)

    def report(self, instance: ProblemInstance) -> KeyedDiffReport:
        return KeyedDiff(self.keys_for(instance)).diff(instance.source, instance.target)

    def align(self, instance: ProblemInstance) -> Dict[int, int]:
        return dict(self.report(instance).alignment)

    def explain(self, instance: ProblemInstance, *,
                request: Optional[ExplainRequest] = None,
                load_seconds: float = 0.0) -> ExplainOutcome:
        started = time.perf_counter()
        explanation = _exact_match_explanation(instance, self.align(instance))
        return _outcome(
            instance, explanation, tier=self.name, confidence=self.confidence,
            elapsed_seconds=time.perf_counter() - started,
            request=request, load_seconds=load_seconds,
        )


class SimilarityExplainer:
    """The unsupervised overlap linker as an :class:`Explainer`."""

    name = TIER_SIMILARITY
    confidence = CONFIDENCE_BASELINE

    def __init__(self, *, min_score: int = 1, max_block_size: int = 100_000):
        self._linker = SimilarityLinker(
            min_score=min_score, max_block_size=max_block_size
        )

    def align(self, instance: ProblemInstance) -> Dict[int, int]:
        return self._linker.link(instance.source, instance.target).alignment

    def explain(self, instance: ProblemInstance, *,
                request: Optional[ExplainRequest] = None,
                load_seconds: float = 0.0) -> ExplainOutcome:
        started = time.perf_counter()
        explanation = _exact_match_explanation(instance, self.align(instance))
        return _outcome(
            instance, explanation, tier=self.name, confidence=self.confidence,
            elapsed_seconds=time.perf_counter() - started,
            request=request, load_seconds=load_seconds,
        )


class TrivialExplainer:
    """``E∅`` as an :class:`Explainer` — the always-valid last resort."""

    name = TIER_TRIVIAL
    confidence = CONFIDENCE_TRIVIAL

    def align(self, instance: ProblemInstance) -> Dict[int, int]:
        return {}

    def explain(self, instance: ProblemInstance, *,
                request: Optional[ExplainRequest] = None,
                load_seconds: float = 0.0) -> ExplainOutcome:
        started = time.perf_counter()
        baseline = run_trivial_baseline(instance)
        return _outcome(
            instance, baseline.explanation, tier=self.name,
            confidence=self.confidence,
            elapsed_seconds=time.perf_counter() - started,
            request=request, load_seconds=load_seconds,
        )


#: The baseline explainers by tier name, in fallback order.
BASELINE_EXPLAINERS = {
    explainer.name: explainer
    for explainer in (KeyedDiffExplainer(), SimilarityExplainer(), TrivialExplainer())
}


def baseline_explainer(name: str) -> Explainer:
    """The shared baseline :class:`Explainer` registered under *name*."""
    try:
        return BASELINE_EXPLAINERS[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline explainer {name!r} "
            f"(available: {sorted(BASELINE_EXPLAINERS)})"
        ) from None


def trivial_fallback(instance: ProblemInstance) -> Explanation:
    """The trivial explanation, exposed for chain-internal use."""
    return trivial_explanation(instance)
