"""Scaled problem-instance families for the row-scalability experiment (Fig. 5).

The paper scales one ``(η = 0.3, τ = 0.3)`` problem instance of *flight-500k*
to different record counts: a scaled instance at ``x%`` uses ``x%`` of the
core records and ``x%`` of each noise set while keeping the sampled
transformations fixed (value-mapping entries of values that vanished are
dropped so the reference cost stays tight).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dataio import Table
from ..functions import AttributeFunction, FunctionRegistry
from .generator import GeneratedInstance, build_instance_from_partition, partition_records
from .primary_key import prepare_dataset
from .transformer import sample_transformations


@dataclass(frozen=True)
class ScaledFamily:
    """A family of instances generated from one partition at several scales."""

    fractions: tuple
    instances: Dict[float, GeneratedInstance]

    def __iter__(self):
        return iter(sorted(self.instances.items()))

    def instance_at(self, fraction: float) -> GeneratedInstance:
        return self.instances[fraction]


def _take_fraction(indices: Sequence[int], fraction: float) -> List[int]:
    count = max(1, round(len(indices) * fraction)) if indices else 0
    return list(indices[:count])


def generate_scaled_family(table: Table, *, eta: float, tau: float,
                           fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                           seed: Optional[int] = None,
                           name: str = "scaled",
                           registry: Optional[FunctionRegistry] = None,
                           validate_reference: bool = False) -> ScaledFamily:
    """Build the Figure-5 style family of scaled instances from one dataset.

    The partition into core and noise and the ground-truth transformations are
    sampled **once**; each fraction then re-uses a prefix of each part, so the
    instances differ only in record count.
    """
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fractions must be in (0, 1], got {fraction}")

    rng = random.Random(seed)
    prepared = prepare_dataset(table)
    core, source_noise, target_noise = partition_records(prepared.n_rows, eta, rng)
    transformations: Dict[str, AttributeFunction] = sample_transformations(prepared, tau, rng)

    instances: Dict[float, GeneratedInstance] = {}
    for fraction in fractions:
        scaled_core = _take_fraction(core, fraction)
        scaled_source_noise = _take_fraction(source_noise, fraction)
        scaled_target_noise = _take_fraction(target_noise, fraction)
        build_rng = random.Random((seed or 0) * 10_007 + round(fraction * 1000))
        instances[fraction] = build_instance_from_partition(
            prepared, scaled_core, scaled_source_noise, scaled_target_noise,
            dict(transformations), build_rng,
            eta=eta, tau=tau, seed=seed,
            name=f"{name}-{int(round(fraction * 100))}pct",
            registry=registry,
            validate_reference=validate_reference,
        )
    return ScaledFamily(fractions=tuple(fractions), instances=instances)
