"""Surrogates of the larger UCI datasets used in the evaluation (Table 2).

=================  ========  ==============  ==========================
dataset            records   attributes(+1)  character
=================  ========  ==============  ==========================
chess (KRK)        28056     7  (→ 8)        board coordinates + outcome
abalone            4177      8  (→ 9)        shell measurements
nursery            12960     9  (→ 10)       categorical application form
adult (census)     48842     14 (→ 15)       demographic attributes
letter             20000     17 (→ 18)       integer image features
=================  ========  ==============  ==========================

The default record counts match the originals; the benchmark harness passes a
smaller ``n_records`` where a laptop-scale run is wanted.
"""

from __future__ import annotations

from .base import (
    CategoricalColumn,
    DatasetSpec,
    DecimalColumn,
    IntegerColumn,
    categorical,
)

_CHESS_FILES = tuple("abcdefgh")
_CHESS_RANKS = tuple(str(i) for i in range(1, 9))


def chess_spec() -> DatasetSpec:
    """King-Rook vs King endgame positions with the optimal-depth class (28 056)."""
    depth_classes = tuple(
        ["draw", "zero", "one", "two", "three", "four", "five", "six", "seven",
         "eight", "nine", "ten", "eleven", "twelve", "thirteen", "fourteen",
         "fifteen", "sixteen"]
    )
    return DatasetSpec(
        name="chess",
        default_records=28_056,
        columns=(
            ("white_king_file", CategoricalColumn(_CHESS_FILES)),
            ("white_king_rank", CategoricalColumn(_CHESS_RANKS)),
            ("white_rook_file", CategoricalColumn(_CHESS_FILES)),
            ("white_rook_rank", CategoricalColumn(_CHESS_RANKS)),
            ("black_king_file", CategoricalColumn(_CHESS_FILES)),
            ("black_king_rank", CategoricalColumn(_CHESS_RANKS)),
            ("optimal_depth", CategoricalColumn(depth_classes)),
        ),
    )


def abalone_spec() -> DatasetSpec:
    """Abalone shell measurements (4 177 records)."""
    return DatasetSpec(
        name="abalone",
        default_records=4_177,
        columns=(
            ("sex", categorical("M", "F", "I")),
            ("length", DecimalColumn(0.075, 0.815, decimals=3)),
            ("diameter", DecimalColumn(0.055, 0.65, decimals=3)),
            ("height", DecimalColumn(0.0, 0.25, decimals=3)),
            ("whole_weight", DecimalColumn(0.002, 2.825, decimals=2)),
            ("shucked_weight", DecimalColumn(0.001, 1.488, decimals=2)),
            ("shell_weight", DecimalColumn(0.0015, 1.005, decimals=2)),
            ("rings", IntegerColumn(1, 29)),
        ),
    )


def nursery_spec() -> DatasetSpec:
    """Nursery admission form: purely categorical attributes (12 960 records)."""
    return DatasetSpec(
        name="nursery",
        default_records=12_960,
        columns=(
            ("parents", categorical("usual", "pretentious", "great_pret")),
            ("has_nurs", categorical("proper", "less_proper", "improper", "critical", "very_crit")),
            ("form", categorical("complete", "completed", "incomplete", "foster")),
            ("children", categorical("1", "2", "3", "more")),
            ("housing", categorical("convenient", "less_conv", "critical")),
            ("finance", categorical("convenient", "inconv")),
            ("social", categorical("nonprob", "slightly_prob", "problematic")),
            ("health", categorical("recommended", "priority", "not_recom")),
            ("class", categorical("not_recom", "recommend", "very_recom", "priority", "spec_prior")),
        ),
    )


def adult_spec() -> DatasetSpec:
    """Census income ("adult"): 14 demographic attributes (48 842 records)."""
    return DatasetSpec(
        name="adult",
        default_records=48_842,
        columns=(
            ("age", IntegerColumn(17, 90)),
            ("workclass", categorical(
                "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
                "Local-gov", "State-gov", "Without-pay", "Never-worked", "?")),
            ("fnlwgt", IntegerColumn(12_000, 1_490_000, step=2_500)),
            ("education", categorical(
                "Bachelors", "Some-college", "11th", "HS-grad", "Prof-school",
                "Assoc-acdm", "Assoc-voc", "9th", "7th-8th", "12th", "Masters",
                "1st-4th", "10th", "Doctorate", "5th-6th", "Preschool")),
            ("education_num", IntegerColumn(1, 16)),
            ("marital_status", categorical(
                "Married-civ-spouse", "Divorced", "Never-married", "Separated",
                "Widowed", "Married-spouse-absent", "Married-AF-spouse")),
            ("occupation", categorical(
                "Tech-support", "Craft-repair", "Other-service", "Sales",
                "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
                "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
                "Transport-moving", "Priv-house-serv", "Protective-serv",
                "Armed-Forces", "?")),
            ("relationship", categorical(
                "Wife", "Own-child", "Husband", "Not-in-family", "Other-relative", "Unmarried")),
            ("race", categorical(
                "White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black")),
            ("sex", categorical("Female", "Male")),
            ("capital_gain", IntegerColumn(0, 99_999, step=500)),
            ("capital_loss", IntegerColumn(0, 4_356, step=100)),
            ("hours_per_week", IntegerColumn(1, 99)),
            ("income", categorical("<=50K", ">50K", weights=(0.76, 0.24))),
        ),
    )


def letter_spec() -> DatasetSpec:
    """Letter recognition: the class letter plus 16 small integer features (20 000)."""
    feature = IntegerColumn(0, 15)
    letters = tuple(chr(code) for code in range(ord("A"), ord("Z") + 1))
    columns = [("letter", CategoricalColumn(letters))]
    feature_names = [
        "x_box", "y_box", "width", "height", "onpix", "x_bar", "y_bar",
        "x2bar", "y2bar", "xybar", "x2ybr", "xy2br", "x_ege", "xegvy",
        "y_ege", "yegvx",
    ]
    for name in feature_names:
        columns.append((name, feature))
    return DatasetSpec(
        name="letter",
        default_records=20_000,
        columns=tuple(columns),
    )
