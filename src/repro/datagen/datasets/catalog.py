"""Catalog of the surrogate evaluation datasets.

``DATASETS`` maps the dataset names used throughout the paper's Table 2 to
their :class:`~repro.datagen.datasets.base.DatasetSpec` builders, together
with the attribute count the paper reports (including the artificial key added
by the generation protocol).  The benchmark harness iterates this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ...dataio import Table
from .base import DatasetSpec
from .uci_small import (
    balance_spec,
    breast_cancer_spec,
    bridges_spec,
    echocardiogram_spec,
    hepatitis_spec,
    horse_colic_spec,
    iris_spec,
)
from .uci_large import abalone_spec, adult_spec, chess_spec, letter_spec, nursery_spec
from .web_data import (
    fd_reduced_spec,
    flight_1k_spec,
    flight_500k_spec,
    ncvoter_spec,
    plista_spec,
    uniprot_spec,
)


@dataclass(frozen=True)
class DatasetEntry:
    """One row of the catalog: builder plus the paper's reported dimensions."""

    name: str
    builder: Callable[[], DatasetSpec]
    #: |A| as reported in Table 2 (original attributes + artificial key).
    paper_attributes: int
    #: Record count as reported in Table 2.
    paper_records: int

    def spec(self) -> DatasetSpec:
        return self.builder()

    def build(self, n_records: Optional[int] = None, *, seed: int = 0) -> Table:
        return self.spec().build(n_records, seed=seed)


#: The sixteen datasets of Table 2 (flight-500k of Figure 5 is listed last).
DATASETS: Dict[str, DatasetEntry] = {
    entry.name: entry
    for entry in (
        DatasetEntry("iris", iris_spec, paper_attributes=6, paper_records=150),
        DatasetEntry("balance", balance_spec, paper_attributes=6, paper_records=625),
        DatasetEntry("chess", chess_spec, paper_attributes=8, paper_records=28_056),
        DatasetEntry("abalone", abalone_spec, paper_attributes=9, paper_records=4_177),
        DatasetEntry("nursery", nursery_spec, paper_attributes=10, paper_records=12_960),
        DatasetEntry("bridges", bridges_spec, paper_attributes=10, paper_records=108),
        DatasetEntry("echocardiogram", echocardiogram_spec, paper_attributes=10, paper_records=132),
        DatasetEntry("breast-cancer", breast_cancer_spec, paper_attributes=11, paper_records=699),
        DatasetEntry("adult", adult_spec, paper_attributes=15, paper_records=48_842),
        DatasetEntry("ncvoter-1k", ncvoter_spec, paper_attributes=16, paper_records=1_000),
        DatasetEntry("letter", letter_spec, paper_attributes=18, paper_records=20_000),
        DatasetEntry("hepatitis", hepatitis_spec, paper_attributes=19, paper_records=155),
        DatasetEntry("horse-colic", horse_colic_spec, paper_attributes=28, paper_records=368),
        DatasetEntry("fd-reduced-30", fd_reduced_spec, paper_attributes=31, paper_records=250_000),
        DatasetEntry("plista", plista_spec, paper_attributes=43, paper_records=1_000),
        DatasetEntry("flight-1k", flight_1k_spec, paper_attributes=75, paper_records=1_000),
        DatasetEntry("uniprot", uniprot_spec, paper_attributes=182, paper_records=1_000),
        DatasetEntry("flight-500k", flight_500k_spec, paper_attributes=20, paper_records=500_000),
    )
}

#: The datasets evaluated in Table 2 (flight-500k only appears in Figure 5).
TABLE2_DATASET_NAMES: List[str] = [
    name for name in DATASETS if name != "flight-500k"
]


def dataset_names() -> List[str]:
    """All catalog entries in Table-2 order."""
    return list(DATASETS)


def get_dataset_entry(name: str) -> DatasetEntry:
    """The catalog entry called *name*; raises ``KeyError`` with suggestions."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None


def load_dataset(name: str, n_records: Optional[int] = None, *, seed: int = 0) -> Table:
    """Build the surrogate table for dataset *name*."""
    return get_dataset_entry(name).build(n_records, seed=seed)
