"""Surrogates of the web / domain datasets used in the evaluation (Table 2).

=================  ========  ==============  ==========================
dataset            records   attributes(+1)  character
=================  ========  ==============  ==========================
ncvoter-1k         1000      15 (→ 16)       voter registration roll
fd-reduced-30      250000    30 (→ 31)       synthetic FD benchmark data
plista             1000      42 (→ 43)       ad-server web log
flight-1k          1000      74 (→ 75)       flight on-time reporting
flight-500k        500000    19 (→ 20)       reduced-width flight data
uniprot            1000      181 (→ 182)     protein annotation export
=================  ========  ==============  ==========================

The wide tables (plista, flight, uniprot) compose their long tail of columns
programmatically — mirroring the real exports, which consist of a handful of
descriptive fields followed by dozens to hundreds of sparse annotation,
counter and flag columns.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import (
    CategoricalColumn,
    CodeColumn,
    ColumnSpec,
    DatasetSpec,
    DateColumn,
    IntegerColumn,
    NameColumn,
    categorical,
    graded,
)

_FIRST_NAMES = (
    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL", "LINDA",
    "WILLIAM", "ELIZABETH", "DAVID", "BARBARA", "RICHARD", "SUSAN", "JOSEPH",
    "JESSICA", "THOMAS", "SARAH", "CHARLES", "KAREN", "CHRISTOPHER", "NANCY",
    "DANIEL", "LISA", "MATTHEW", "BETTY", "ANTHONY", "MARGARET", "MARK", "SANDRA",
)

_LAST_NAMES = (
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER", "DAVIS",
    "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ", "WILSON", "ANDERSON",
    "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN", "LEE", "PEREZ", "THOMPSON",
    "WHITE", "HARRIS",
)

_NC_COUNTIES = (
    "ALAMANCE", "BUNCOMBE", "CABARRUS", "CATAWBA", "CUMBERLAND", "DAVIDSON",
    "DURHAM", "FORSYTH", "GASTON", "GUILFORD", "IREDELL", "JOHNSTON",
    "MECKLENBURG", "NEW HANOVER", "ONSLOW", "ORANGE", "PITT", "RANDOLPH",
    "ROWAN", "UNION", "WAKE", "WAYNE",
)

_AIRLINES = ("AA", "AS", "B6", "DL", "EV", "F9", "HA", "MQ", "NK", "OO", "UA", "US", "VX", "WN")

_AIRPORTS = (
    "ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO",
    "EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL",
    "LGA", "BWI", "SLC", "SAN", "IAD", "DCA", "MDW", "TPA", "PDX", "HNL",
)

_ORGANISMS = (
    "Homo sapiens", "Mus musculus", "Rattus norvegicus", "Saccharomyces cerevisiae",
    "Escherichia coli", "Arabidopsis thaliana", "Drosophila melanogaster",
    "Caenorhabditis elegans", "Danio rerio", "Bos taurus",
)


def ncvoter_spec() -> DatasetSpec:
    """North-Carolina voter roll sample: 15 registration attributes (1 000)."""
    return DatasetSpec(
        name="ncvoter-1k",
        default_records=1_000,
        columns=(
            ("county_desc", CategoricalColumn(_NC_COUNTIES)),
            ("first_name", NameColumn(_FIRST_NAMES)),
            ("last_name", NameColumn(_LAST_NAMES)),
            ("status_cd", categorical("A", "I", "D", "R", weights=(0.7, 0.15, 0.1, 0.05))),
            ("reason_cd", categorical("AV", "A1", "IN", "IU", "DN", "DU")),
            ("absentee_ind", categorical("Y", "N", weights=(0.1, 0.9))),
            ("zip_code", IntegerColumn(27006, 28909, step=13, zero_pad=5)),
            ("city", CategoricalColumn((
                "RALEIGH", "CHARLOTTE", "DURHAM", "GREENSBORO", "WINSTON SALEM",
                "FAYETTEVILLE", "CARY", "WILMINGTON", "HIGH POINT", "ASHEVILLE"))),
            ("state_cd", categorical("NC", "SC", "VA", weights=(0.96, 0.02, 0.02))),
            ("race_code", categorical("W", "B", "A", "I", "O", "U", "M")),
            ("ethnic_code", categorical("HL", "NL", "UN")),
            ("gender_code", categorical("M", "F", "U")),
            ("birth_age_group", categorical("18-25", "26-40", "41-65", "66+")),
            ("party_cd", categorical("DEM", "REP", "UNA", "LIB", "GRE")),
            ("precinct_abbrv", graded("PR", 60)),
        ),
    )


def fd_reduced_spec() -> DatasetSpec:
    """The synthetic fd-reduced-30 benchmark table: 30 low-cardinality columns."""
    columns: List[Tuple[str, ColumnSpec]] = []
    for index in range(30):
        if index % 3 == 0:
            spec: ColumnSpec = IntegerColumn(0, 499, zero_pad=4)
        elif index % 3 == 1:
            spec = IntegerColumn(0, 99)
        else:
            spec = graded(f"c{index}_", 50)
        columns.append((f"attr_{index:02d}", spec))
    return DatasetSpec(
        name="fd-reduced-30",
        default_records=250_000,
        columns=tuple(columns),
    )


def plista_spec() -> DatasetSpec:
    """Ad-server web-log sample: 42 attributes of ids, flags and counters (1 000)."""
    columns: List[Tuple[str, ColumnSpec]] = [
        ("publisher_id", graded("pub", 40)),
        ("campaign_id", IntegerColumn(1_000, 1_400)),
        ("item_id", CodeColumn(pool_size=300, letters=1, digits=4)),
        ("domain_id", graded("dom", 80)),
        ("category", categorical(
            "news", "sport", "finance", "lifestyle", "tech", "local", "politics", "auto")),
        ("os_id", categorical("1", "2", "3", "4", "5")),
        ("browser_id", categorical("1", "2", "3", "4", "5", "6", "7")),
        ("device_class", categorical("desktop", "mobile", "tablet")),
        ("country", categorical("DE", "AT", "CH", "NL", "PL")),
        ("region", graded("reg", 16)),
        ("created_at", DateColumn(2015, 2016)),
        ("hour_of_day", IntegerColumn(0, 23)),
    ]
    for index in range(15):
        columns.append((f"flag_{index:02d}", categorical("0", "1")))
    for index in range(15):
        columns.append((f"counter_{index:02d}", IntegerColumn(0, 250)))
    return DatasetSpec(
        name="plista",
        default_records=1_000,
        columns=tuple(columns),
    )


def _flight_common_columns() -> List[Tuple[str, ColumnSpec]]:
    return [
        ("flight_date", DateColumn(2015, 2015)),
        ("airline_code", CategoricalColumn(_AIRLINES)),
        ("flight_number", IntegerColumn(1, 2400, step=12, zero_pad=4)),
        ("origin", CategoricalColumn(_AIRPORTS)),
        ("destination", CategoricalColumn(_AIRPORTS)),
        ("scheduled_departure", IntegerColumn(0, 2359, step=15, zero_pad=4)),
        ("departure_delay", IntegerColumn(-15, 180, step=2)),
        ("scheduled_arrival", IntegerColumn(0, 2359, step=15, zero_pad=4)),
        ("arrival_delay", IntegerColumn(-20, 200, step=2)),
        ("cancelled", categorical("0", "1", weights=(0.97, 0.03))),
        ("diverted", categorical("0", "1", weights=(0.99, 0.01))),
        ("distance_miles", IntegerColumn(60, 2700, step=10)),
        ("air_time", IntegerColumn(20, 380, step=2)),
        ("taxi_out", IntegerColumn(2, 60)),
        ("taxi_in", IntegerColumn(1, 40)),
        ("carrier_delay", IntegerColumn(0, 120, step=3)),
        ("weather_delay", IntegerColumn(0, 90, step=3)),
        ("nas_delay", IntegerColumn(0, 90, step=3)),
        ("security_delay", IntegerColumn(0, 30)),
    ]


def flight_1k_spec() -> DatasetSpec:
    """Flight on-time reporting, wide export: 74 attributes (1 000 records)."""
    columns = _flight_common_columns()
    columns.extend([
        ("late_aircraft_delay", IntegerColumn(0, 120, step=3)),
        ("origin_state", graded("ST", 40)),
        ("destination_state", graded("ST", 40)),
        ("origin_wac", IntegerColumn(1, 93)),
        ("destination_wac", IntegerColumn(1, 93)),
    ])
    # Status/gate/segment annotation columns of the raw reporting format.
    for index in range(25):
        columns.append((f"status_flag_{index:02d}", categorical("Y", "N", "")))
    for index in range(15):
        columns.append((f"segment_count_{index:02d}", IntegerColumn(0, 40)))
    for index in range(10):
        columns.append((f"gate_code_{index:02d}", graded("G", 30)))
    assert len(columns) == 74
    return DatasetSpec(
        name="flight-1k",
        default_records=1_000,
        columns=tuple(columns),
    )


def flight_500k_spec() -> DatasetSpec:
    """The reduced-width flight table used for row scalability: 19 attributes."""
    return DatasetSpec(
        name="flight-500k",
        default_records=500_000,
        columns=tuple(_flight_common_columns()),
    )


def uniprot_spec() -> DatasetSpec:
    """Protein-annotation export: 181 attributes (1 000 records).

    The real uniprot export has a handful of descriptive columns followed by a
    very long tail of annotation columns that are sparse (mostly empty or
    small counts) or categorical (presence/evidence flags), which is what
    keeps them below the distinct-ratio threshold.
    """
    columns: List[Tuple[str, ColumnSpec]] = [
        ("entry_status", categorical("reviewed", "unreviewed")),
        ("organism", CategoricalColumn(_ORGANISMS)),
        ("taxonomy_lineage", categorical(
            "Eukaryota", "Bacteria", "Archaea", "Viruses")),
        ("gene_family", graded("FAM", 120)),
        ("protein_existence", categorical(
            "Evidence at protein level", "Evidence at transcript level",
            "Inferred from homology", "Predicted", "Uncertain")),
        ("sequence_length_bin", IntegerColumn(50, 3_500, step=50)),
        ("mass_kda_bin", IntegerColumn(5, 400, step=5)),
        ("created_year", IntegerColumn(1988, 2018)),
        ("modified_year", IntegerColumn(2000, 2019)),
        ("proteome_id", graded("UP", 90)),
        ("keyword_class", graded("KW-", 100)),
    ]
    # Annotation presence / evidence-count columns.
    annotation_topics = (
        "function", "catalytic_activity", "cofactor", "activity_regulation",
        "pathway", "subunit", "interaction", "subcellular_location", "domain",
        "ptm", "disease", "disruption_phenotype", "toxic_dose", "biotech",
        "pharmaceutical", "miscellaneous", "similarity", "caution",
    )
    for topic in annotation_topics:
        columns.append((f"cc_{topic}", categorical("0", "1", weights=(0.55, 0.45))))
        columns.append((f"cc_{topic}_evidence", IntegerColumn(0, 12)))
    # Feature-count columns (active sites, binding sites, helices, ...).
    feature_types = (
        "active_site", "binding_site", "calcium_binding", "chain", "coiled_coil",
        "compositional_bias", "cross_link", "disulfide_bond", "dna_binding",
        "domain_ft", "glycosylation", "helix", "initiator_methionine",
        "lipidation", "metal_binding", "modified_residue", "motif", "mutagenesis",
        "natural_variant", "non_standard_residue", "nucleotide_binding",
        "peptide", "propeptide", "region", "repeat", "signal_peptide", "site",
        "strand", "topological_domain", "transit_peptide", "transmembrane",
        "turn", "zinc_finger",
    )
    for feature in feature_types:
        columns.append((f"ft_{feature}_count", IntegerColumn(0, 25)))
    # Cross-reference counts to external databases.
    databases = (
        "embl", "pdb", "refseq", "ensembl", "kegg", "reactome", "string",
        "intact", "pfam", "interpro", "prosite", "smart", "supfam", "go_bp",
        "go_mf", "go_cc", "omim", "pharmgkb", "chembl", "drugbank",
        "peptideatlas", "proteomicsdb", "expression_atlas", "bgee", "genevisible",
        "orthodb", "phylomedb", "treefam", "eggnog", "ko", "oma", "hogenom",
        "inparanoid", "genetree", "biogrid", "dip", "mint", "corum",
        "evolutionarytrace", "genewiki", "pro", "rouge", "ucsc", "ctd",
        "disgenet", "genecards", "hgnc", "mim", "nextprot", "opentargets",
        "pharos",
    )
    for database in databases:
        columns.append((f"xref_{database}_count", IntegerColumn(0, 30)))
    # Evidence-code flag columns round the schema off to 181 attributes.
    index = 0
    while len(columns) < 181:
        columns.append((f"evidence_eco_{index:03d}", categorical("0", "1", weights=(0.7, 0.3))))
        index += 1
    assert len(columns) == 181
    return DatasetSpec(
        name="uniprot",
        default_records=1_000,
        columns=tuple(columns),
    )
