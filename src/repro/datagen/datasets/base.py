"""Column-generator machinery for the surrogate evaluation datasets.

The paper evaluates on the datasets of the HPI functional-dependency
repeatability page (iris, chess, adult, flight, uniprot, ...).  Those files
are not available in the offline reproduction environment, so
:mod:`repro.datagen.datasets` generates *surrogate* tables that mimic the real
datasets in the properties that matter to the algorithm:

* the number of attributes that survive the protocol's preparation step,
* the number of records,
* the mix of value types (categorical codes, measurements, counts, dates,
  free-text-ish identifiers), and
* per-column distinct-value ratios below the 0.7 removal threshold.

Every concrete dataset module composes the column specifications defined here
into a :class:`DatasetSpec`.
"""

from __future__ import annotations

import random
import string
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...dataio import Schema, Table


class ColumnSpec:
    """Base class of all column generators."""

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        """Produce *n_records* string cells."""
        raise NotImplementedError


@dataclass(frozen=True)
class CategoricalColumn(ColumnSpec):
    """Draw from a fixed set of category labels with optional weights."""

    values: Tuple[str, ...]
    weights: Optional[Tuple[float, ...]] = None

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        if self.weights is not None:
            return rng.choices(list(self.values), weights=list(self.weights), k=n_records)
        return [rng.choice(self.values) for _ in range(n_records)]


@dataclass(frozen=True)
class IntegerColumn(ColumnSpec):
    """Uniform integers in ``[low, high]``, optionally snapped to a step / padded."""

    low: int
    high: int
    step: int = 1
    zero_pad: int = 0

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        cells = []
        for _ in range(n_records):
            value = rng.randint(self.low, self.high)
            if self.step > 1:
                value = (value // self.step) * self.step
            text = str(value)
            if self.zero_pad:
                text = text.zfill(self.zero_pad)
            cells.append(text)
        return cells


@dataclass(frozen=True)
class DecimalColumn(ColumnSpec):
    """Uniform decimals in ``[low, high]`` rounded to ``decimals`` places."""

    low: float
    high: float
    decimals: int = 1

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        cells = []
        for _ in range(n_records):
            value = rng.uniform(self.low, self.high)
            cells.append(f"{value:.{self.decimals}f}")
        return cells


@dataclass(frozen=True)
class CodeColumn(ColumnSpec):
    """Codes drawn from a bounded pool, e.g. ``AB-12``; pool size bounds distinctness."""

    pool_size: int
    letters: int = 2
    digits: int = 2
    separator: str = ""

    def _pool(self, rng: random.Random) -> List[str]:
        pool = set()
        guard = 0
        while len(pool) < self.pool_size and guard < self.pool_size * 50:
            guard += 1
            letter_part = "".join(rng.choice(string.ascii_uppercase) for _ in range(self.letters))
            digit_part = "".join(rng.choice(string.digits) for _ in range(self.digits))
            pool.add(f"{letter_part}{self.separator}{digit_part}")
        return sorted(pool)

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        pool = self._pool(rng)
        return [rng.choice(pool) for _ in range(n_records)]


@dataclass(frozen=True)
class DateColumn(ColumnSpec):
    """Dates in ``yyyymmdd`` (or another supported) format within a year range."""

    first_year: int = 2000
    last_year: int = 2020
    layout: str = "{year:04d}{month:02d}{day:02d}"
    #: Probability of emitting the "no expiry" sentinel 99991231, as common in
    #: ERP exports (and in the paper's running example).
    sentinel_probability: float = 0.0

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        cells = []
        for _ in range(n_records):
            if self.sentinel_probability and rng.random() < self.sentinel_probability:
                cells.append("99991231")
                continue
            year = rng.randint(self.first_year, self.last_year)
            month = rng.randint(1, 12)
            day = rng.randint(1, 28)
            cells.append(self.layout.format(year=year, month=month, day=day))
        return cells


@dataclass(frozen=True)
class NameColumn(ColumnSpec):
    """Person/organisation names composed from bounded token lists."""

    first_tokens: Tuple[str, ...]
    second_tokens: Tuple[str, ...] = ()
    separator: str = " "

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        cells = []
        for _ in range(n_records):
            first = rng.choice(self.first_tokens)
            if self.second_tokens:
                cells.append(f"{first}{self.separator}{rng.choice(self.second_tokens)}")
            else:
                cells.append(first)
        return cells


@dataclass(frozen=True)
class MissingMixin(ColumnSpec):
    """Wrap another column spec and blank out a fraction of its cells."""

    inner: ColumnSpec = field(default=None)  # type: ignore[assignment]
    missing_rate: float = 0.1
    missing_token: str = "?"

    def generate(self, n_records: int, rng: random.Random) -> List[str]:
        cells = self.inner.generate(n_records, rng)
        return [
            self.missing_token if rng.random() < self.missing_rate else cell
            for cell in cells
        ]


@dataclass(frozen=True)
class DerivedColumn(ColumnSpec):
    """A column computed from previously generated columns (weak dependencies)."""

    source_attributes: Tuple[str, ...]
    derive: Callable[[Tuple[str, ...], random.Random], str] = None  # type: ignore[assignment]

    def generate(self, n_records: int, rng: random.Random) -> List[str]:  # pragma: no cover
        raise RuntimeError("DerivedColumn is generated via DatasetSpec.build, not directly")


@dataclass(frozen=True)
class DatasetSpec:
    """A named surrogate dataset: ordered column specs plus a default size."""

    name: str
    columns: Tuple[Tuple[str, ColumnSpec], ...]
    default_records: int

    @property
    def attribute_names(self) -> List[str]:
        return [name for name, _ in self.columns]

    def build(self, n_records: Optional[int] = None, *, seed: int = 0) -> Table:
        """Generate the surrogate table with *n_records* rows (default size)."""
        count = n_records if n_records is not None else self.default_records
        if count < 1:
            raise ValueError(f"n_records must be >= 1, got {count}")
        # Derive a process-independent seed from the dataset name (the builtin
        # hash of strings is randomised per interpreter run).
        name_seed = zlib.crc32(self.name.encode("utf-8"))
        rng = random.Random(seed * 1_000_003 + name_seed)
        generated: Dict[str, List[str]] = {}
        for attribute, spec in self.columns:
            if isinstance(spec, DerivedColumn):
                cells = []
                for index in range(count):
                    inputs = tuple(generated[source][index] for source in spec.source_attributes)
                    cells.append(spec.derive(inputs, rng))
                generated[attribute] = cells
            else:
                generated[attribute] = spec.generate(count, rng)
        schema = Schema(self.attribute_names)
        return Table.from_columns(schema, generated)


def categorical(*values: str, weights: Optional[Sequence[float]] = None) -> CategoricalColumn:
    """Shorthand constructor for :class:`CategoricalColumn`."""
    return CategoricalColumn(tuple(values), tuple(weights) if weights else None)


def graded(prefix: str, count: int) -> CategoricalColumn:
    """A categorical column of ``count`` graded labels ``prefix1 .. prefixN``."""
    return CategoricalColumn(tuple(f"{prefix}{i}" for i in range(1, count + 1)))
