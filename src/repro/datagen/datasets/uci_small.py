"""Surrogates of the small UCI datasets used in the evaluation (Table 2).

Each function mimics one dataset in record count, attribute count and value
characteristics; the attribute counts are chosen so that, after the protocol
adds the artificial primary key, the resulting problem instances have the same
``|A|`` as reported in Table 2 of the paper.

=================  ========  ==============  ==========================
dataset            records   attributes(+1)  character
=================  ========  ==============  ==========================
iris               150       5  (→ 6)        flower measurements + class
balance            625       5  (→ 6)        integer scale weights + class
bridges            108       9  (→ 10)       categorical bridge properties
echocardiogram     132       9  (→ 10)       clinical measurements
breast-cancer      699       10 (→ 11)       graded cell features
hepatitis          155       18 (→ 19)       boolean clinical findings
horse-colic        368       27 (→ 28)       mixed veterinary findings
=================  ========  ==============  ==========================
"""

from __future__ import annotations

from .base import (
    DatasetSpec,
    DecimalColumn,
    IntegerColumn,
    MissingMixin,
    categorical,
    graded,
)


def iris_spec() -> DatasetSpec:
    """Iris: four coarse measurements plus the species label (150 records)."""
    return DatasetSpec(
        name="iris",
        default_records=150,
        columns=(
            ("sepal_length", DecimalColumn(4.3, 7.9, decimals=1)),
            ("sepal_width", DecimalColumn(2.0, 4.4, decimals=1)),
            ("petal_length", DecimalColumn(1.0, 6.9, decimals=1)),
            ("petal_width", DecimalColumn(0.1, 2.5, decimals=1)),
            ("species", categorical("Iris-setosa", "Iris-versicolor", "Iris-virginica")),
        ),
    )


def balance_spec() -> DatasetSpec:
    """Balance scale: four integer weights/distances plus the tilt class (625)."""
    return DatasetSpec(
        name="balance",
        default_records=625,
        columns=(
            ("left_weight", IntegerColumn(1, 5)),
            ("left_distance", IntegerColumn(1, 5)),
            ("right_weight", IntegerColumn(1, 5)),
            ("right_distance", IntegerColumn(1, 5)),
            ("class", categorical("L", "B", "R", weights=(0.46, 0.08, 0.46))),
        ),
    )


def bridges_spec() -> DatasetSpec:
    """Pittsburgh bridges: categorical construction properties (108 records)."""
    return DatasetSpec(
        name="bridges",
        default_records=108,
        columns=(
            ("river", categorical("A", "M", "O", "Y")),
            ("location", IntegerColumn(1, 52)),
            ("erected", categorical("CRAFTS", "EMERGING", "MATURE", "MODERN")),
            ("purpose", categorical("WALK", "AQUEDUCT", "RR", "HIGHWAY")),
            ("length", categorical("SHORT", "MEDIUM", "LONG", "?")),
            ("lanes", categorical("1", "2", "4", "6", "?")),
            ("clear_g", categorical("N", "G", "?")),
            ("rel_l", categorical("S", "S-F", "F", "?")),
            ("material", categorical("WOOD", "IRON", "STEEL", "?")),
        ),
    )


def echocardiogram_spec() -> DatasetSpec:
    """Echocardiogram: clinical survival measurements (132 records)."""
    return DatasetSpec(
        name="echocardiogram",
        default_records=132,
        columns=(
            ("survival_months", IntegerColumn(0, 57)),
            ("still_alive", categorical("0", "1")),
            ("age_at_heart_attack", IntegerColumn(35, 86)),
            ("pericardial_effusion", categorical("0", "1")),
            ("fractional_shortening", MissingMixin(DecimalColumn(0.01, 0.61, decimals=2),
                                                   missing_rate=0.06)),
            ("epss", MissingMixin(DecimalColumn(0.0, 40.0, decimals=0), missing_rate=0.1)),
            ("lvdd", MissingMixin(DecimalColumn(2.3, 6.8, decimals=1), missing_rate=0.08)),
            ("wall_motion_index", DecimalColumn(1.0, 3.0, decimals=1)),
            ("alive_at_1", categorical("0", "1", "?")),
        ),
    )


def breast_cancer_spec() -> DatasetSpec:
    """Breast cancer Wisconsin: graded 1–10 cell features plus the class (699)."""
    return DatasetSpec(
        name="breast-cancer",
        default_records=699,
        columns=(
            ("clump_thickness", IntegerColumn(1, 10)),
            ("cell_size_uniformity", IntegerColumn(1, 10)),
            ("cell_shape_uniformity", IntegerColumn(1, 10)),
            ("marginal_adhesion", IntegerColumn(1, 10)),
            ("single_epi_cell_size", IntegerColumn(1, 10)),
            ("bare_nuclei", MissingMixin(IntegerColumn(1, 10), missing_rate=0.02)),
            ("bland_chromatin", IntegerColumn(1, 10)),
            ("normal_nucleoli", IntegerColumn(1, 10)),
            ("mitoses", IntegerColumn(1, 10)),
            ("class", categorical("2", "4", weights=(0.65, 0.35))),
        ),
    )


def hepatitis_spec() -> DatasetSpec:
    """Hepatitis: mostly boolean clinical findings plus a few lab values (155)."""
    boolean = categorical("1", "2")
    return DatasetSpec(
        name="hepatitis",
        default_records=155,
        columns=(
            ("class", categorical("DIE", "LIVE", weights=(0.2, 0.8))),
            ("age", IntegerColumn(7, 78)),
            ("sex", categorical("male", "female")),
            ("steroid", boolean),
            ("antivirals", boolean),
            ("fatigue", boolean),
            ("malaise", boolean),
            ("anorexia", boolean),
            ("liver_big", MissingMixin(boolean, missing_rate=0.06)),
            ("liver_firm", MissingMixin(boolean, missing_rate=0.07)),
            ("spleen_palpable", boolean),
            ("spiders", boolean),
            ("ascites", boolean),
            ("varices", boolean),
            ("bilirubin", DecimalColumn(0.3, 4.8, decimals=1)),
            ("alk_phosphate", MissingMixin(IntegerColumn(26, 295, step=5), missing_rate=0.15)),
            ("sgot", IntegerColumn(14, 110, step=2)),
            ("histology", boolean),
        ),
    )


def horse_colic_spec() -> DatasetSpec:
    """Horse colic: 27 mixed veterinary findings with many missing cells (368)."""
    grade3 = categorical("1", "2", "3")
    grade4 = categorical("1", "2", "3", "4")
    grade5 = categorical("1", "2", "3", "4", "5")
    return DatasetSpec(
        name="horse-colic",
        default_records=368,
        columns=(
            ("surgery", categorical("1", "2")),
            ("age", categorical("1", "9")),
            ("rectal_temp", MissingMixin(DecimalColumn(35.4, 40.8, decimals=1), missing_rate=0.16)),
            ("pulse", MissingMixin(IntegerColumn(30, 184, step=4), missing_rate=0.06)),
            ("respiratory_rate", MissingMixin(IntegerColumn(8, 96, step=4), missing_rate=0.16)),
            ("temp_extremities", MissingMixin(grade4, missing_rate=0.15)),
            ("peripheral_pulse", MissingMixin(grade4, missing_rate=0.19)),
            ("mucous_membranes", MissingMixin(categorical("1", "2", "3", "4", "5", "6"),
                                              missing_rate=0.13)),
            ("capillary_refill", MissingMixin(grade3, missing_rate=0.09)),
            ("pain", MissingMixin(grade5, missing_rate=0.15)),
            ("peristalsis", MissingMixin(grade4, missing_rate=0.12)),
            ("abdominal_distension", MissingMixin(grade4, missing_rate=0.15)),
            ("nasogastric_tube", MissingMixin(grade3, missing_rate=0.28)),
            ("nasogastric_reflux", MissingMixin(grade3, missing_rate=0.29)),
            ("nasogastric_reflux_ph", MissingMixin(DecimalColumn(1.0, 7.5, decimals=1),
                                                   missing_rate=0.66)),
            ("rectal_exam_feces", MissingMixin(grade4, missing_rate=0.28)),
            ("abdomen", MissingMixin(grade5, missing_rate=0.32)),
            ("packed_cell_volume", MissingMixin(IntegerColumn(23, 75), missing_rate=0.08)),
            ("total_protein", MissingMixin(DecimalColumn(3.3, 89.0, decimals=0), missing_rate=0.09)),
            ("abdominocentesis_appearance", MissingMixin(grade3, missing_rate=0.45)),
            ("abdomcentesis_total_protein", MissingMixin(DecimalColumn(0.1, 10.1, decimals=1),
                                                         missing_rate=0.54)),
            ("outcome", MissingMixin(grade3, missing_rate=0.01)),
            ("surgical_lesion", categorical("1", "2")),
            ("lesion_site", graded("site", 12)),
            ("lesion_type", graded("type", 8)),
            ("lesion_subtype", graded("sub", 5)),
            ("cp_data", categorical("1", "2")),
        ),
    )
