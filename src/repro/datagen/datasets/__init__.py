"""Surrogate evaluation datasets (offline stand-ins for the HPI FD datasets)."""

from .base import (
    CategoricalColumn,
    CodeColumn,
    ColumnSpec,
    DatasetSpec,
    DateColumn,
    DecimalColumn,
    DerivedColumn,
    IntegerColumn,
    MissingMixin,
    NameColumn,
    categorical,
    graded,
)
from .catalog import (
    DATASETS,
    TABLE2_DATASET_NAMES,
    DatasetEntry,
    dataset_names,
    get_dataset_entry,
    load_dataset,
)

__all__ = [
    "ColumnSpec",
    "CategoricalColumn",
    "IntegerColumn",
    "DecimalColumn",
    "CodeColumn",
    "DateColumn",
    "NameColumn",
    "MissingMixin",
    "DerivedColumn",
    "DatasetSpec",
    "categorical",
    "graded",
    "DATASETS",
    "TABLE2_DATASET_NAMES",
    "DatasetEntry",
    "dataset_names",
    "get_dataset_entry",
    "load_dataset",
]
