"""Problem-instance generation following the evaluation protocol (Section 5.1).

Starting from a clean dataset table, the generator

1. removes overly distinct and empty attributes (:mod:`.primary_key`),
2. splits the records into a *core* and two disjoint *noise* sets whose sizes
   are chosen such that each noise set makes up a fraction ``η`` of its
   snapshot,
3. samples one ground-truth transformation per attribute with probability
   ``τ`` (:mod:`.transformer`),
4. builds the source snapshot (core + source noise) and the target snapshot
   (transformed core + transformed target noise),
5. adds an artificial primary key of running integers, permuted differently
   in the two snapshots, and
6. shuffles both snapshots so record order carries no information.

The result bundles the :class:`~repro.core.instance.ProblemInstance` with the
*reference explanation* — the ground truth used by the quality metrics
Δcore, Δcosts and accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.explanation import Explanation
from ..core.instance import ProblemInstance
from ..dataio import Table
from ..functions import AttributeFunction, FunctionRegistry, ValueMapping, default_registry
from .primary_key import (
    ARTIFICIAL_KEY_ATTRIBUTE,
    attach_key_column,
    key_permutations,
    prepare_dataset,
)
from .transformer import sample_transformations


@dataclass(frozen=True)
class GeneratedInstance:
    """A generated problem instance together with its ground truth."""

    instance: ProblemInstance
    reference: Explanation
    #: Ground-truth transformation per original (non-key) attribute.
    transformations: Dict[str, AttributeFunction]
    eta: float
    tau: float
    seed: Optional[int]
    key_attribute: str = ARTIFICIAL_KEY_ATTRIBUTE

    @property
    def core_size(self) -> int:
        return self.reference.core_size

    @property
    def n_source_noise(self) -> int:
        return self.reference.n_deleted

    @property
    def n_target_noise(self) -> int:
        return self.reference.n_inserted

    @property
    def transformed_attributes(self) -> List[str]:
        """Attributes whose ground-truth function is not the identity."""
        return [
            attribute
            for attribute, function in self.transformations.items()
            if not function.is_identity
        ]

    def describe(self) -> str:
        return (
            f"{self.instance.name}: core={self.core_size}, "
            f"noise={self.n_source_noise}+{self.n_target_noise}, "
            f"eta={self.eta}, tau={self.tau}, "
            f"transformed={self.transformed_attributes}"
        )


def noise_set_size(n_records: int, eta: float) -> int:
    """Size of each noise set: ``η·N / (1 + η)`` rounded to the nearest integer.

    Derived from the protocol's requirement that each noise set makes up a
    fraction η of its snapshot and the two noise sets are disjoint.
    """
    if not 0.0 <= eta < 1.0:
        raise ValueError(f"eta must be in [0, 1), got {eta}")
    size = round(eta * n_records / (1.0 + eta))
    # Keep at least one core record.
    return min(size, max(0, (n_records - 1) // 2))


def partition_records(n_records: int, eta: float,
                      rng: random.Random) -> Tuple[List[int], List[int], List[int]]:
    """Split record indices into (core, source noise, target noise)."""
    noise = noise_set_size(n_records, eta)
    indices = list(range(n_records))
    rng.shuffle(indices)
    source_noise = sorted(indices[:noise])
    target_noise = sorted(indices[noise:2 * noise])
    core = sorted(indices[2 * noise:])
    return core, source_noise, target_noise


def _restrict_value_mappings(functions: Dict[str, AttributeFunction], table: Table,
                             row_ids: Sequence[int]) -> Dict[str, AttributeFunction]:
    """Drop value-mapping entries for values the function is never applied to."""
    restricted: Dict[str, AttributeFunction] = {}
    for attribute, function in functions.items():
        if isinstance(function, ValueMapping):
            column = table.column_view(attribute)
            present = {column[row_id] for row_id in row_ids}
            restricted[attribute] = function.restricted_to(present)
        else:
            restricted[attribute] = function
    return restricted


def build_instance_from_partition(prepared: Table, core: Sequence[int],
                                  source_noise: Sequence[int], target_noise: Sequence[int],
                                  transformations: Dict[str, AttributeFunction],
                                  rng: random.Random, *, eta: float, tau: float,
                                  seed: Optional[int] = None, name: str = "generated",
                                  registry: Optional[FunctionRegistry] = None,
                                  add_key: bool = True,
                                  validate_reference: bool = True) -> GeneratedInstance:
    """Assemble the snapshots and reference explanation for a fixed partition.

    This lower-level entry point is shared by :func:`generate_problem_instance`
    and the row-scalability harness (which re-uses one partition and one
    transformation sample at several scales).
    """
    attributes = list(prepared.schema)
    transformations = _restrict_value_mappings(
        transformations, prepared, list(core) + list(target_noise)
    )
    ordered_functions = [transformations[attribute] for attribute in attributes]

    def transform_row(row: Tuple[str, ...]) -> Tuple[str, ...]:
        cells = []
        for function, cell in zip(ordered_functions, row):
            transformed = function.apply(cell)
            if transformed is None:
                raise ValueError(
                    f"sampled transformation {function!r} is not applicable to {cell!r}"
                )
            cells.append(transformed)
        return tuple(cells)

    # Source snapshot: core + source noise (original representation).
    source_members: List[Tuple[str, Optional[int]]] = []  # (kind, core position)
    source_rows: List[Tuple[str, ...]] = []
    for position, row_id in enumerate(core):
        source_rows.append(prepared.row(row_id))
        source_members.append(("core", position))
    for row_id in source_noise:
        source_rows.append(prepared.row(row_id))
        source_members.append(("noise", None))

    # Target snapshot: transformed core + transformed target noise.
    target_members: List[Tuple[str, Optional[int]]] = []
    target_rows: List[Tuple[str, ...]] = []
    for position, row_id in enumerate(core):
        target_rows.append(transform_row(prepared.row(row_id)))
        target_members.append(("core", position))
    for row_id in target_noise:
        target_rows.append(transform_row(prepared.row(row_id)))
        target_members.append(("noise", None))

    # Shuffle both snapshots independently.
    source_order = list(range(len(source_rows)))
    target_order = list(range(len(target_rows)))
    rng.shuffle(source_order)
    rng.shuffle(target_order)
    source_rows = [source_rows[i] for i in source_order]
    source_members = [source_members[i] for i in source_order]
    target_rows = [target_rows[i] for i in target_order]
    target_members = [target_members[i] for i in target_order]

    source_table = Table(prepared.schema, source_rows)
    target_table = Table(prepared.schema, target_rows)

    # Row ids of each core member in the shuffled snapshots.
    source_position_of_core = {
        member[1]: row_id for row_id, member in enumerate(source_members) if member[0] == "core"
    }
    target_position_of_core = {
        member[1]: row_id for row_id, member in enumerate(target_members) if member[0] == "core"
    }
    alignment = {
        source_position_of_core[position]: target_position_of_core[position]
        for position in range(len(core))
    }

    functions: Dict[str, AttributeFunction] = dict(transformations)
    key_attribute = ARTIFICIAL_KEY_ATTRIBUTE
    if add_key:
        source_keys, target_keys = key_permutations(len(source_rows), rng)
        # The target snapshot can have a different size; draw its keys from an
        # independent permutation of its own length.
        if len(target_rows) != len(source_rows):
            _, target_keys = key_permutations(len(target_rows), rng)
        source_table = attach_key_column(source_table, source_keys)
        target_table = attach_key_column(target_table, target_keys[: len(target_rows)])
        key_mapping = {
            source_keys[source_id]: target_keys[target_id]
            for source_id, target_id in alignment.items()
        }
        functions[key_attribute] = ValueMapping(key_mapping)

    instance = ProblemInstance(
        source=source_table,
        target=target_table,
        registry=registry if registry is not None else default_registry(),
        name=name,
    )

    deleted = tuple(
        row_id for row_id, member in enumerate(source_members) if member[0] == "noise"
    )
    inserted = tuple(
        row_id for row_id, member in enumerate(target_members) if member[0] == "noise"
    )
    reference = Explanation(
        functions=functions,
        alignment=alignment,
        deleted_source_ids=deleted,
        inserted_target_ids=inserted,
    )
    if validate_reference:
        reference.validate(instance)

    original_transformations = {
        attribute: function
        for attribute, function in transformations.items()
    }
    return GeneratedInstance(
        instance=instance,
        reference=reference,
        transformations=original_transformations,
        eta=eta,
        tau=tau,
        seed=seed,
        key_attribute=key_attribute if add_key else "",
    )


def generate_problem_instance(table: Table, *, eta: float, tau: float,
                              seed: Optional[int] = None,
                              rng: Optional[random.Random] = None,
                              name: str = "generated",
                              registry: Optional[FunctionRegistry] = None,
                              add_key: bool = True,
                              prepare: bool = True,
                              validate_reference: bool = True) -> GeneratedInstance:
    """Generate one problem instance of difficulty ``(η, τ)`` from *table*."""
    if rng is None:
        rng = random.Random(seed)
    prepared = prepare_dataset(table) if prepare else table
    core, source_noise, target_noise = partition_records(prepared.n_rows, eta, rng)
    transformations = sample_transformations(prepared, tau, rng)
    return build_instance_from_partition(
        prepared, core, source_noise, target_noise, transformations, rng,
        eta=eta, tau=tau, seed=seed, name=name, registry=registry,
        add_key=add_key, validate_reference=validate_reference,
    )
