"""Sampling of ground-truth attribute transformations (Section 5.1).

For every attribute that is chosen to be transformed (probability τ), a meta
function fitting the attribute's domain is instantiated at random:

* numeric attributes may receive addition, division, multiplication, constant
  values, prefixing/suffixing, padding-style trims, masks or a value mapping,
* non-numeric attributes receive the string families,
* value mappings are instantiated as a random permutation of the attribute's
  distinct source values — the hardest case, because it has the most
  parameters and is easily confused with the identity.

The sampled functions must be *total* on the attribute's source values
(``apply`` never returns ``None``), otherwise the reference explanation would
not be valid; the sampler retries domain-appropriate families until this
holds.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from decimal import Decimal
from typing import Callable, Dict, Optional, Sequence

from ..dataio import Table
from ..dataio import values as value_helpers
from ..functions import (
    IDENTITY,
    Addition,
    AttributeFunction,
    BackCharTrimming,
    ConstantValue,
    Division,
    FrontCharTrimming,
    FrontMasking,
    Lowercasing,
    Multiplication,
    Prefixing,
    PrefixReplacement,
    Suffixing,
    SuffixReplacement,
    Uppercasing,
    ValueMapping,
)

#: Sampler signature: distinct source values + rng → concrete function or None
#: when the family cannot be instantiated on this value set.
FunctionSampler = Callable[[Sequence[str], random.Random], Optional[AttributeFunction]]


def _column_is_numeric(values: Sequence[str]) -> bool:
    non_missing = [value for value in values if not value_helpers.is_missing(value)]
    if not non_missing:
        return False
    return all(value_helpers.is_numeric(value) for value in non_missing)


def _sample_addition(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    delta = Decimal(rng.choice([1, 2, 5, 7, 10, 25, 100, 1000, -1, -5, -100]))
    return Addition(delta)


def _sample_division(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    divisor = Decimal(rng.choice([2, 4, 5, 10, 100, 1000]))
    return Division(divisor)


def _sample_multiplication(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    factor = Decimal(rng.choice([2, 3, 10, 100, 1000]))
    return Multiplication(factor)


def _sample_constant(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    alphabet = string.ascii_uppercase
    constant = "".join(rng.choice(alphabet) for _ in range(4))
    return ConstantValue(constant)


def _sample_prefixing(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    prefix = rng.choice(["X_", "NEW-", "v2:", "#", "00"])
    return Prefixing(prefix)


def _sample_suffixing(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    suffix = rng.choice(["_X", "-old", ".v2", "#", "00"])
    return Suffixing(suffix)


def _sample_prefix_replacement(values: Sequence[str],
                               rng: random.Random) -> Optional[AttributeFunction]:
    non_empty = [value for value in values if value]
    if not non_empty:
        return None
    sample = rng.choice(non_empty)
    length = rng.randint(1, min(3, len(sample)))
    old = sample[:length]
    if not old:
        return None
    new = "".join(rng.choice(string.ascii_uppercase + string.digits) for _ in range(length))
    if new == old:
        new = ("Z" + new)[: max(1, length)]
        if new == old:
            return None
    # Applicable to every value (identity on non-matching prefixes), hence total.
    return PrefixReplacement(old, new)


def _sample_suffix_replacement(values: Sequence[str],
                               rng: random.Random) -> Optional[AttributeFunction]:
    non_empty = [value for value in values if value]
    if not non_empty:
        return None
    sample = rng.choice(non_empty)
    length = rng.randint(1, min(3, len(sample)))
    old = sample[-length:]
    if not old:
        return None
    new = "".join(rng.choice(string.ascii_uppercase + string.digits) for _ in range(length))
    if new == old:
        new = (new + "Z")[-max(1, length):]
        if new == old:
            return None
    return SuffixReplacement(old, new)


def _sample_front_masking(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    shortest = min((len(value) for value in values if value), default=0)
    if shortest < 2:
        return None
    length = rng.randint(1, min(3, shortest))
    mask = "*" * length
    return FrontMasking(mask)


def _sample_front_trimming(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    # Only meaningful when some values share a leading character that can be
    # stripped; pick the most common first character.
    first_chars = [value[0] for value in values if value]
    if not first_chars:
        return None
    char = rng.choice(first_chars)
    return FrontCharTrimming(char)


def _sample_back_trimming(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    last_chars = [value[-1] for value in values if value]
    if not last_chars:
        return None
    char = rng.choice(last_chars)
    return BackCharTrimming(char)


def _sample_uppercasing(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    if all(value == value.upper() for value in values):
        return None  # would be indistinguishable from the identity
    return Uppercasing()


def _sample_lowercasing(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    if all(value == value.lower() for value in values):
        return None
    return Lowercasing()


def _sample_value_mapping(values: Sequence[str], rng: random.Random) -> Optional[AttributeFunction]:
    distinct = sorted(set(values))
    if len(distinct) < 2:
        return None
    permuted = list(distinct)
    rng.shuffle(permuted)
    if permuted == distinct:
        permuted = permuted[1:] + permuted[:1]
    return ValueMapping(dict(zip(distinct, permuted)))


#: Families applicable to numeric attributes.
NUMERIC_SAMPLERS: Dict[str, FunctionSampler] = {
    "addition": _sample_addition,
    "division": _sample_division,
    "multiplication": _sample_multiplication,
    "constant": _sample_constant,
    "prefixing": _sample_prefixing,
    "suffixing": _sample_suffixing,
    "prefix_replacement": _sample_prefix_replacement,
    "suffix_replacement": _sample_suffix_replacement,
    "front_masking": _sample_front_masking,
    "value_mapping": _sample_value_mapping,
}

#: Families applicable to non-numeric (string/categorical) attributes.
STRING_SAMPLERS: Dict[str, FunctionSampler] = {
    "constant": _sample_constant,
    "uppercasing": _sample_uppercasing,
    "lowercasing": _sample_lowercasing,
    "prefixing": _sample_prefixing,
    "suffixing": _sample_suffixing,
    "prefix_replacement": _sample_prefix_replacement,
    "suffix_replacement": _sample_suffix_replacement,
    "front_masking": _sample_front_masking,
    "front_char_trimming": _sample_front_trimming,
    "back_char_trimming": _sample_back_trimming,
    "value_mapping": _sample_value_mapping,
}


@dataclass(frozen=True)
class SampledTransformation:
    """The ground-truth function sampled for one attribute."""

    attribute: str
    function: AttributeFunction

    @property
    def is_identity(self) -> bool:
        return self.function.is_identity


def _is_total(function: AttributeFunction, values: Sequence[str]) -> bool:
    """``True`` when *function* is applicable to every distinct value."""
    return all(function.apply(value) is not None for value in values)


def _has_effect(function: AttributeFunction, values: Sequence[str]) -> bool:
    """``True`` when *function* changes at least one value (not identity-like)."""
    return any(function.apply(value) != value for value in values)


def sample_attribute_function(values: Sequence[str], rng: random.Random, *,
                              exclude: Sequence[str] = (),
                              max_attempts: int = 25) -> Optional[AttributeFunction]:
    """Sample one total, effective transformation for an attribute's values."""
    distinct = sorted(set(values))
    if not distinct:
        return None
    samplers = NUMERIC_SAMPLERS if _column_is_numeric(distinct) else STRING_SAMPLERS
    names = [name for name in samplers if name not in set(exclude)]
    if not names:
        return None
    for _ in range(max_attempts):
        name = rng.choice(names)
        function = samplers[name](distinct, rng)
        if function is None:
            continue
        if not _is_total(function, distinct):
            continue
        if not _has_effect(function, distinct):
            continue
        return function
    return None


def sample_transformations(table: Table, tau: float, rng: random.Random, *,
                           exclude_attributes: Sequence[str] = (),
                           exclude_functions: Sequence[str] = (),
                           max_rejections: int = 100) -> Dict[str, AttributeFunction]:
    """Sample the ground-truth transformation of every attribute (Section 5.1).

    Each attribute is transformed with probability ``tau``; samplings in which
    *every* attribute ends up transformed are rejected and redrawn, mirroring
    the paper's protocol (at least one attribute must stay unchanged).
    """
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    excluded = set(exclude_attributes)
    eligible = [attribute for attribute in table.schema if attribute not in excluded]

    for _ in range(max_rejections):
        functions: Dict[str, AttributeFunction] = {
            attribute: IDENTITY for attribute in table.schema
        }
        n_transformed = 0
        for attribute in eligible:
            if rng.random() >= tau:
                continue
            function = sample_attribute_function(
                table.column_view(attribute), rng, exclude=exclude_functions
            )
            if function is None:
                continue
            functions[attribute] = function
            n_transformed += 1
        if eligible and n_transformed == len(eligible):
            continue  # reject: every attribute transformed
        return functions
    # Fall back to the last sampling with one attribute reset to the identity.
    if eligible:
        functions[eligible[0]] = IDENTITY
    return functions
