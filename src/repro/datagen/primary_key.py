"""Artificial primary keys and attribute pre-processing (Section 5.1).

Two preparation steps from the evaluation protocol:

* attributes whose fraction of distinct values exceeds 0.7 — and attributes
  that are completely empty — are removed, because an untransformed
  highly-distinct attribute would make the alignment trivially easy;
* a synthetic primary-key attribute of running integers is added, using *two
  different permutations* of the same integers in the two snapshots, so that
  blocking on it yields a wrong alignment and the algorithm has to recognise
  that the key was reassigned.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..dataio import Table

#: Name of the synthetic key column added by the protocol.
ARTIFICIAL_KEY_ATTRIBUTE = "__row_key__"

#: Distinct-value ratio above which an attribute is dropped before generation.
DISTINCT_RATIO_THRESHOLD = 0.7


def removable_attributes(table: Table, *, threshold: float = DISTINCT_RATIO_THRESHOLD) -> List[str]:
    """Attributes the protocol removes: too distinct or completely empty."""
    removable = []
    for attribute in table.schema:
        stats = table.column_stats(attribute)
        if stats.is_empty or stats.distinct_ratio > threshold:
            removable.append(attribute)
    return removable


def prepare_dataset(table: Table, *, threshold: float = DISTINCT_RATIO_THRESHOLD) -> Table:
    """Drop the attributes :func:`removable_attributes` flags (if any)."""
    to_drop = removable_attributes(table, threshold=threshold)
    if not to_drop:
        return table
    if len(to_drop) == len(table.schema):
        raise ValueError("every attribute would be removed by the distinct-ratio filter")
    return table.drop_columns(to_drop)


def key_permutations(n_records: int, rng: random.Random,
                     *, width: int | None = None) -> Tuple[List[str], List[str]]:
    """Two different permutations of the running integers ``0 .. n-1``.

    The integers are zero-padded to a common width so the key looks like a
    typical surrogate key column.  For ``n_records <= 1`` the permutations are
    necessarily equal.
    """
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    digits = width if width is not None else max(4, len(str(max(n_records - 1, 0))))
    values = [str(index).zfill(digits) for index in range(n_records)]
    first = list(values)
    second = list(values)
    rng.shuffle(first)
    rng.shuffle(second)
    if n_records > 1 and first == second:
        second[0], second[1] = second[1], second[0]
    return first, second


def attach_key_column(table: Table, key_values: Sequence[str],
                      *, attribute: str = ARTIFICIAL_KEY_ATTRIBUTE,
                      position: int = 0) -> Table:
    """A new table with the synthetic key column inserted at *position*."""
    return table.with_column(attribute, list(key_values), position=position)
