"""Problem-instance generation following the paper's evaluation protocol."""

from .generator import (
    GeneratedInstance,
    build_instance_from_partition,
    generate_problem_instance,
    noise_set_size,
    partition_records,
)
from .primary_key import (
    ARTIFICIAL_KEY_ATTRIBUTE,
    DISTINCT_RATIO_THRESHOLD,
    attach_key_column,
    key_permutations,
    prepare_dataset,
    removable_attributes,
)
from .scaling import ScaledFamily, generate_scaled_family
from .transformer import (
    SampledTransformation,
    sample_attribute_function,
    sample_transformations,
)
from . import datasets
from . import running_example

__all__ = [
    "GeneratedInstance",
    "generate_problem_instance",
    "build_instance_from_partition",
    "partition_records",
    "noise_set_size",
    "ARTIFICIAL_KEY_ATTRIBUTE",
    "DISTINCT_RATIO_THRESHOLD",
    "prepare_dataset",
    "removable_attributes",
    "key_permutations",
    "attach_key_column",
    "ScaledFamily",
    "generate_scaled_family",
    "sample_transformations",
    "sample_attribute_function",
    "SampledTransformation",
    "datasets",
    "running_example",
]
