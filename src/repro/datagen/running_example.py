"""The running example of the paper (Figure 1): ERP snapshots S₁ and T₁.

The two snapshots share the schema ``(ID1, ID2, Date, Type, Val, Unit, Org)``.
The reference explanation ``E₁`` uses these attribute functions:

* ``ID1``, ``ID2`` — value mappings (the composite primary key was reassigned),
* ``Date`` — prefix replacement ``'9999123'x ↦ '2018070'x``, otherwise identity,
* ``Type`` — identity,
* ``Val`` — division by 1000,
* ``Unit`` — constant ``'k $'``,
* ``Org`` — identity,

and labels the source records S04, S10, S14, S16 as deleted and the target
records T01, T05, T16 as inserted.  Its cost under α = 0.5 is 77 versus 112
for the trivial explanation (Section 3.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..dataio import Schema, Table
from ..core.instance import ProblemInstance

#: Attribute tuple A₁ of the running example.
RUNNING_EXAMPLE_SCHEMA = Schema(["ID1", "ID2", "Date", "Type", "Val", "Unit", "Org"])

_SOURCE_ROWS = [
    ("S01", "0000", "20130416", "A", "80000", "USD", "IBM"),
    ("S02", "0001", "20120128", "A", "180000", "USD", "IBM"),
    ("S03", "0002", "20130315", "A", "220000", "USD", "IBM"),
    ("S04", "0003", "20120128", "B", "3780000", "USD", "IBM"),
    ("S05", "0004", "20120731", "B", "425000", "USD", "IBM"),
    ("S06", "0005", "20120731", "C", "21000", "USD", "IBM"),
    ("S07", "0006", "20140503", "C", "422400", "USD", "IBM"),
    ("S08", "0007", "20140503", "C", "6540", "USD", "SAP"),
    ("S09", "0008", "20131021", "C", "9800", "USD", "SAP"),
    ("S10", "0009", "20121125", "C", "0", "USD", "SAP"),
    ("S11", "0010", "99991231", "D", "65", "USD", "SAP"),
    ("S12", "0011", "99991231", "D", "180000", "USD", "BASF"),
    ("S13", "0012", "99991231", "D", "220000", "USD", "BASF"),
    ("S14", "0013", "20150203", "D", "21000", "USD", "BASF"),
    ("S15", "0014", "20150213", "D", "65", "USD", "BASF"),
    ("S16", "0015", "20160807", "E", "80000", "USD", "BASF"),
    ("S17", "0016", "20161231", "E", "80000", "USD", "BASF"),
]

_TARGET_ROWS = [
    ("T01", "0000", "99991231", "A", "80", "k $", "IBM"),
    ("T02", "0001", "20120128", "A", "180", "k $", "IBM"),
    ("T03", "0002", "20120731", "C", "21", "k $", "IBM"),
    ("T04", "0003", "20120731", "B", "425", "k $", "IBM"),
    ("T05", "0004", "20121125", "B", "0.022", "k $", "DAB"),
    ("T06", "0005", "20130315", "A", "220", "k $", "IBM"),
    ("T07", "0006", "20130416", "A", "80", "k $", "IBM"),
    ("T08", "0007", "20131021", "C", "9.8", "k $", "SAP"),
    ("T09", "0008", "20140503", "C", "422.4", "k $", "IBM"),
    ("T10", "0009", "20140503", "C", "6.54", "k $", "SAP"),
    ("T11", "0010", "20150213", "D", "0.065", "k $", "BASF"),
    ("T12", "0011", "20161231", "E", "80", "k $", "BASF"),
    ("T13", "0012", "20180701", "D", "0.065", "k $", "SAP"),
    ("T14", "0013", "20180701", "D", "180", "k $", "BASF"),
    ("T15", "0014", "20180701", "D", "220", "k $", "BASF"),
    ("T16", "0015", "99991231", "F", "0.45", "k $", "SAP"),
]

#: The reference alignment of E₁ given as ``source ID1 → target ID1`` labels.
REFERENCE_ALIGNMENT_LABELS: Dict[str, str] = {
    "S01": "T07", "S02": "T02", "S03": "T06", "S05": "T04", "S06": "T03",
    "S07": "T09", "S08": "T10", "S09": "T08", "S11": "T13", "S12": "T14",
    "S13": "T15", "S15": "T11", "S17": "T12",
}

#: Source records E₁ labels as deleted and target records it labels as inserted.
REFERENCE_DELETED_LABELS: Tuple[str, ...] = ("S04", "S10", "S14", "S16")
REFERENCE_INSERTED_LABELS: Tuple[str, ...] = ("T01", "T05", "T16")

#: Cost of E₁ (α = 0.5) and of the trivial explanation, as worked out in §3.1.
REFERENCE_COST = 77
TRIVIAL_COST = 112


def source_table() -> Table:
    """Snapshot S₁ of Figure 1 (17 records)."""
    return Table(RUNNING_EXAMPLE_SCHEMA, _SOURCE_ROWS)


def target_table() -> Table:
    """Snapshot T₁ of Figure 1 (16 records)."""
    return Table(RUNNING_EXAMPLE_SCHEMA, _TARGET_ROWS)


def running_example_instance(name: str = "running-example") -> ProblemInstance:
    """Problem instance I₁ = (S₁, T₁, A₁, F₁) with the default function pool."""
    return ProblemInstance(source=source_table(), target=target_table(), name=name)


def reference_alignment() -> Dict[int, int]:
    """The reference alignment as row-id pairs (source row id → target row id)."""
    source_ids = {row[0]: index for index, row in enumerate(_SOURCE_ROWS)}
    target_ids = {row[0]: index for index, row in enumerate(_TARGET_ROWS)}
    return {
        source_ids[source_label]: target_ids[target_label]
        for source_label, target_label in REFERENCE_ALIGNMENT_LABELS.items()
    }


def reference_functions():
    """The attribute functions of E₁ (without the ID1/ID2 value mappings).

    The two key attributes receive value mappings derived from
    :func:`reference_alignment`; the remaining attributes use the concise meta
    functions listed in Figure 1.
    """
    from ..functions import (
        IDENTITY,
        ConstantValue,
        Division,
        PrefixReplacement,
        ValueMapping,
    )

    alignment = reference_alignment()
    source = source_table()
    target = target_table()
    id1_map = {
        source.cell(source_id, "ID1"): target.cell(target_id, "ID1")
        for source_id, target_id in alignment.items()
    }
    id2_map = {
        source.cell(source_id, "ID2"): target.cell(target_id, "ID2")
        for source_id, target_id in alignment.items()
    }
    return {
        "ID1": ValueMapping(id1_map),
        "ID2": ValueMapping(id2_map),
        "Date": PrefixReplacement("9999123", "2018070"),
        "Type": IDENTITY,
        "Val": Division(1000),
        "Unit": ConstantValue("k $"),
        "Org": IDENTITY,
    }
