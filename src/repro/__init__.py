"""Affidavit — explaining differences between unaligned table snapshots.

A from-scratch Python reproduction of

    Fink, Meilicke, Stuckenschmidt:
    "Explaining Differences Between Unaligned Table Snapshots", EDBT 2020.

Public API overview
-------------------
Work enters the engine through :mod:`repro.api`, the one request/session
layer shared by the library, the CLI, the HTTP service and the batch runner:

* :class:`~repro.api.ExplainRequest` — a frozen, versioned description of
  one run (snapshots inline or by path, configuration overrides, registry
  subset, engine choice) with ``to_dict``/``from_dict`` round-trips and a
  canonical hash that the service's idempotency keys derive from.
* :class:`~repro.api.ExplainSession` (alias :class:`~repro.api.Session`) —
  the fluent facade owning registry resolution, engine dispatch and
  progress/cancellation wiring::

      from repro import ExplainRequest, Session

      outcome = (
          Session()
          .with_config("hid", seed=7)
          .with_functions("identity", "division")
          .explain(ExplainRequest(source_path="old.csv", target_path="new.csv"))
      )
      print(outcome.summary())

* :class:`~repro.api.ExplainOutcome` — the typed result: explanation,
  costs, timings, cache statistics and provenance, serializable like the
  request.
* :meth:`~repro.api.ExplainSession.explain_iter` — the same run streamed as
  typed :class:`~repro.api.SearchEvent` objects.
* :class:`~repro.api.ExplainBudget` / ``Session().with_budget(50)`` —
  budgeted, tiered explanation: the strategy chain walks
  cache → greedy → full search → baseline fallbacks under a wall-clock
  deadline and records the answering tier in the outcome's provenance.

Supporting layers
-----------------
* :mod:`repro.core` — the search engine itself
  (:class:`~repro.core.Affidavit`, Algorithm 1) and the cost model.
* :mod:`repro.functions` — the transformation-function language (Table 1);
  :class:`~repro.functions.FunctionRegistry` is how the pool is extended.
* :mod:`repro.dataio` — schemas, column-oriented tables and CSV I/O.
* :mod:`repro.datagen` — the evaluation protocol's problem-instance
  generator.
* :mod:`repro.service` — the HTTP job service and the batch runner, both
  thin adapters over :mod:`repro.api`.
* :mod:`repro.obs` — structured tracing (:class:`~repro.obs.Tracer`,
  :class:`~repro.obs.Span`), the process-wide metrics registry, and the
  Prometheus/Chrome-trace renderers behind ``/metrics`` and ``--trace``.
* :mod:`repro.baselines`, :mod:`repro.complexity`, :mod:`repro.evaluation`,
  :mod:`repro.export` — comparators, the 3-SAT reduction, the experiment
  harness and report/SQL/JSON exporters.

Deprecated
----------
* :func:`repro.explain_snapshots` still works but emits a
  :class:`DeprecationWarning`; use
  ``Session().explain_tables(source, target)`` (or build an
  :class:`~repro.api.ExplainRequest`) instead.
"""

import warnings as _warnings
from typing import Optional as _Optional

from .dataio import Schema, Table, read_csv, read_snapshot_pair, write_csv
from .functions import FunctionRegistry, default_registry
from .core import (
    Affidavit,
    AffidavitConfig,
    AffidavitResult,
    Explanation,
    ProblemInstance,
    explanation_cost,
    explanation_from_functions,
    identity_configuration,
    overlap_configuration,
    trivial_explanation,
    trivial_explanation_cost,
)
from .obs import NULL_TRACER, Span, Tracer
from .api import (
    DEFAULT_STRATEGY,
    TIERS,
    ExplainBudget,
    ExplainOutcome,
    ExplainRequest,
    ExplainSession,
    RequestValidationError,
    SearchCompleted,
    SearchEvent,
    SearchProgressed,
    SearchStarted,
    Session,
    StrategyChain,
)

__version__ = "1.1.0"


def explain_snapshots(source: Table, target: Table, *,
                      config: _Optional[AffidavitConfig] = None,
                      registry: _Optional[FunctionRegistry] = None,
                      name: str = "instance") -> AffidavitResult:
    """Deprecated one-call API; use :class:`repro.api.ExplainSession`.

    Equivalent to ``ExplainSession(config=config, registry=registry)
    .explain_tables(source, target, name=name).result``.  Kept as a thin
    shim for existing callers; both snapshots are frozen in place exactly
    as before.
    """
    _warnings.warn(
        "repro.explain_snapshots is deprecated; use "
        "repro.api.ExplainSession (e.g. Session().explain_tables(source, target))",
        DeprecationWarning,
        stacklevel=2,
    )
    session = ExplainSession(config=config, registry=registry)
    return session.explain_tables(source, target, name=name).result


__all__ = [
    "Schema",
    "Table",
    "read_csv",
    "read_snapshot_pair",
    "write_csv",
    "FunctionRegistry",
    "default_registry",
    "Affidavit",
    "AffidavitConfig",
    "AffidavitResult",
    "Explanation",
    "ProblemInstance",
    "explain_snapshots",
    "explanation_cost",
    "explanation_from_functions",
    "identity_configuration",
    "overlap_configuration",
    "trivial_explanation",
    "trivial_explanation_cost",
    "ExplainRequest",
    "ExplainOutcome",
    "ExplainSession",
    "Session",
    "ExplainBudget",
    "StrategyChain",
    "TIERS",
    "DEFAULT_STRATEGY",
    "RequestValidationError",
    "SearchEvent",
    "SearchStarted",
    "SearchProgressed",
    "SearchCompleted",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "__version__",
]
