"""Affidavit — explaining differences between unaligned table snapshots.

A from-scratch Python reproduction of

    Fink, Meilicke, Stuckenschmidt:
    "Explaining Differences Between Unaligned Table Snapshots", EDBT 2020.

Public API overview
-------------------
* :class:`~repro.core.affidavit.Affidavit` /
  :func:`~repro.core.affidavit.explain_snapshots` — run the search on two
  snapshots and obtain an :class:`~repro.core.explanation.Explanation`.
* :class:`~repro.core.instance.ProblemInstance` — two snapshots plus the
  meta-function pool.
* :mod:`repro.functions` — the transformation-function language (Table 1).
* :mod:`repro.dataio` — schemas, tables and CSV I/O.
* :mod:`repro.datagen` — the evaluation protocol's problem-instance generator.
* :mod:`repro.baselines` — keyed diff / similarity-linking comparators.
* :mod:`repro.complexity` — the 3-SAT reduction behind the NP-hardness proof.
* :mod:`repro.evaluation` — quality metrics and the experiment harness.
"""

from .dataio import Schema, Table, read_csv, read_snapshot_pair, write_csv
from .functions import FunctionRegistry, default_registry
from .core import (
    Affidavit,
    AffidavitConfig,
    AffidavitResult,
    Explanation,
    ProblemInstance,
    explain_snapshots,
    explanation_cost,
    explanation_from_functions,
    identity_configuration,
    overlap_configuration,
    trivial_explanation,
    trivial_explanation_cost,
)

__version__ = "1.0.0"

__all__ = [
    "Schema",
    "Table",
    "read_csv",
    "read_snapshot_pair",
    "write_csv",
    "FunctionRegistry",
    "default_registry",
    "Affidavit",
    "AffidavitConfig",
    "AffidavitResult",
    "Explanation",
    "ProblemInstance",
    "explain_snapshots",
    "explanation_cost",
    "explanation_from_functions",
    "identity_configuration",
    "overlap_configuration",
    "trivial_explanation",
    "trivial_explanation_cost",
    "__version__",
]
