"""Unit tests for the level-width-bounded priority queue (Section 4.6)."""

import pytest

from repro.core import BoundedLevelQueue, SearchState
from repro.dataio import Schema
from repro.functions import ConstantValue


@pytest.fixture
def schema():
    return Schema(["a", "b", "c", "d"])


def state_with(schema, *assignments):
    """Build a state assigning constants to the first len(assignments) attributes."""
    state = SearchState.empty(schema)
    for attribute, value in zip(schema, assignments):
        state = state.extend(attribute, ConstantValue(value))
    return state


class TestCapacityRules:
    def test_level_capacity_formula(self):
        queue = BoundedLevelQueue(width=5)
        assert queue.level_capacity(0) == 6
        assert queue.level_capacity(1) == 5
        assert queue.level_capacity(5) == 1
        assert queue.level_capacity(9) == 1

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedLevelQueue(width=0)


class TestPushAndPoll:
    def test_poll_returns_lowest_cost(self, schema):
        queue = BoundedLevelQueue(width=3)
        queue.push(state_with(schema, "x"), 10.0)
        queue.push(state_with(schema, "y"), 5.0)
        queue.push(state_with(schema, "z"), 7.0)
        assert queue.poll().cost == 5.0
        assert queue.poll().cost == 7.0
        assert len(queue) == 1

    def test_tie_break_prefers_more_assignments(self, schema):
        queue = BoundedLevelQueue(width=3)
        shallow = state_with(schema, "x")
        deep = state_with(schema, "x", "y")
        queue.push(shallow, 5.0)
        queue.push(deep, 5.0)
        assert queue.poll().state == deep

    def test_poll_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedLevelQueue(width=1).poll()

    def test_peek_does_not_remove(self, schema):
        queue = BoundedLevelQueue(width=2)
        queue.push(state_with(schema, "x"), 3.0)
        assert queue.peek().cost == 3.0
        assert len(queue) == 1

    def test_duplicate_states_rejected(self, schema):
        queue = BoundedLevelQueue(width=3)
        state = state_with(schema, "x")
        assert queue.push(state, 4.0)
        assert not queue.push(state, 2.0)
        assert len(queue) == 1


class TestLevelBounding:
    def test_full_level_rejects_worse_states(self, schema):
        queue = BoundedLevelQueue(width=1)  # capacity 1 on level 1
        queue.push(state_with(schema, "x"), 5.0)
        accepted = queue.push(state_with(schema, "y"), 9.0)
        assert not accepted
        assert len(queue) == 1

    def test_full_level_accepts_better_state_and_evicts_worst(self, schema):
        queue = BoundedLevelQueue(width=1)
        queue.push(state_with(schema, "x"), 5.0)
        accepted = queue.push(state_with(schema, "y"), 3.0)
        assert accepted
        assert len(queue) == 1
        assert queue.poll().cost == 3.0

    def test_levels_are_bounded_independently(self, schema):
        queue = BoundedLevelQueue(width=2)
        # level 1 capacity 2, level 2 capacity 1
        assert queue.push(state_with(schema, "a"), 1.0)
        assert queue.push(state_with(schema, "b"), 2.0)
        assert not queue.push(state_with(schema, "c"), 3.0)
        assert queue.push(state_with(schema, "a", "b"), 9.0)
        assert not queue.push(state_with(schema, "x", "y"), 10.0)
        assert len(queue) == 3

    def test_states_on_level(self, schema):
        queue = BoundedLevelQueue(width=3)
        queue.push(state_with(schema, "a"), 1.0)
        queue.push(state_with(schema, "a", "b"), 2.0)
        assert len(queue.states_on_level(1)) == 1
        assert len(queue.states_on_level(2)) == 1
        assert queue.states_on_level(3) == []

    def test_equal_cost_accepted_on_full_level(self, schema):
        queue = BoundedLevelQueue(width=1)
        queue.push(state_with(schema, "x"), 5.0)
        # "not worse than all states on the level" admits equal costs
        assert queue.push(state_with(schema, "y"), 5.0)
        assert len(queue) == 1

    def test_equal_cost_eviction_drops_the_oldest_worst(self, schema):
        # Level 1 of a width=2 queue holds two states; when several stored
        # states tie for worst, an equal-cost insertion evicts the earliest
        # stored one — the max() scan keeps the first maximum it sees.
        queue = BoundedLevelQueue(width=2)
        first = state_with(schema, "a")
        second = state_with(schema, "b")
        newcomer = state_with(schema, "c")
        queue.push(first, 5.0)
        queue.push(second, 5.0)
        assert queue.push(newcomer, 5.0)
        remaining = {entry.state for entry in queue.states_on_level(1)}
        assert remaining == {second, newcomer}

    def test_width_one_level_capacity_edge(self, schema):
        # ``max(1, width - level + 1)`` at width 1: the root level still has
        # capacity 2, every deeper level exactly 1.
        queue = BoundedLevelQueue(width=1)
        assert queue.level_capacity(0) == 2
        assert queue.level_capacity(1) == 1
        assert queue.level_capacity(7) == 1
        # Functional check on level 2: the single slot only turns over for
        # states that are not worse.
        assert queue.push(state_with(schema, "a", "b"), 4.0)
        assert not queue.push(state_with(schema, "c", "d"), 4.5)
        assert queue.push(state_with(schema, "e", "f"), 4.0)
        assert len(queue.states_on_level(2)) == 1

    def test_poll_prefers_deeper_states_across_levels(self, schema):
        # On a three-way cost tie the deepest state is polled first, then the
        # next-deepest — the search reaches end states as early as possible.
        queue = BoundedLevelQueue(width=3)
        depth1 = state_with(schema, "x")
        depth2 = state_with(schema, "x", "y")
        depth3 = state_with(schema, "x", "y", "z")
        queue.push(depth1, 5.0)
        queue.push(depth3, 5.0)
        queue.push(depth2, 5.0)
        assert queue.poll().state == depth3
        assert queue.poll().state == depth2
        assert queue.poll().state == depth1


class TestRepr:
    def test_repr_shows_level_occupancy(self, schema):
        queue = BoundedLevelQueue(width=2)
        queue.push(state_with(schema, "a"), 1.0)
        assert "width=2" in repr(queue)
        assert "1: 1" in repr(queue)
