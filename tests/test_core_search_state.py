"""Unit tests for search states (Definition 4.1/4.2)."""

import pytest

from repro.core import MAP_MARKER, UNDECIDED, SearchState
from repro.dataio import Schema
from repro.functions import IDENTITY, ConstantValue, Division


@pytest.fixture
def schema():
    return Schema(["a", "b", "c"])


class TestConstruction:
    def test_empty_state(self, schema):
        state = SearchState.empty(schema)
        assert state.undecided_attributes == ["a", "b", "c"]
        assert state.n_assigned == 0
        assert not state.is_end_state

    def test_from_functions(self, schema):
        state = SearchState.from_functions(schema, {"b": IDENTITY})
        assert state.assignment_for("b") is IDENTITY
        assert state.assignment_for("a") is UNDECIDED

    def test_length_mismatch_rejected(self, schema):
        with pytest.raises(ValueError):
            SearchState(schema, [UNDECIDED])


class TestAccessors:
    def test_decided_and_undecided(self, schema):
        state = SearchState(schema, [IDENTITY, UNDECIDED, MAP_MARKER])
        assert state.decided_attributes == ["a"]
        assert state.undecided_attributes == ["b"]
        assert state.map_marked_attributes == ["c"]
        assert state.n_assigned == 2

    def test_function_for(self, schema):
        state = SearchState(schema, [IDENTITY, UNDECIDED, MAP_MARKER])
        assert state.function_for("a") is IDENTITY
        assert state.function_for("b") is None
        assert state.function_for("c") is None

    def test_decided_functions(self, schema):
        division = Division(10)
        state = SearchState(schema, [division, UNDECIDED, IDENTITY])
        assert state.decided_functions == {"a": division, "c": IDENTITY}

    def test_is_end_state(self, schema):
        assert SearchState(schema, [IDENTITY, IDENTITY, IDENTITY]).is_end_state
        assert not SearchState(schema, [IDENTITY, MAP_MARKER, IDENTITY]).is_end_state

    def test_function_description_length(self, schema):
        state = SearchState(schema, [Division(10), ConstantValue("x"), UNDECIDED])
        assert state.function_description_length == 2


class TestDerivation:
    def test_extend(self, schema):
        state = SearchState.empty(schema).extend("b", IDENTITY)
        assert state.assignment_for("b") is IDENTITY
        assert state.assignment_for("a") is UNDECIDED

    def test_extend_already_assigned_rejected(self, schema):
        state = SearchState.empty(schema).extend("b", IDENTITY)
        with pytest.raises(ValueError):
            state.extend("b", ConstantValue("x"))

    def test_extend_does_not_mutate_original(self, schema):
        original = SearchState.empty(schema)
        original.extend("a", IDENTITY)
        assert original.assignment_for("a") is UNDECIDED

    def test_replace_overwrites_map_marker(self, schema):
        state = SearchState(schema, [MAP_MARKER, UNDECIDED, UNDECIDED])
        replaced = state.replace("a", IDENTITY)
        assert replaced.assignment_for("a") is IDENTITY


class TestEqualityAndRepr:
    def test_equal_states_hash_equal(self, schema):
        left = SearchState.empty(schema).extend("a", IDENTITY)
        right = SearchState.empty(schema).extend("a", IDENTITY)
        assert left == right
        assert hash(left) == hash(right)

    def test_different_assignments_not_equal(self, schema):
        left = SearchState.empty(schema).extend("a", IDENTITY)
        right = SearchState.empty(schema).extend("b", IDENTITY)
        assert left != right

    def test_function_identity_matters_for_equality(self, schema):
        left = SearchState.empty(schema).extend("a", Division(10))
        right = SearchState.empty(schema).extend("a", Division(20))
        assert left != right

    def test_repr_shows_assignments(self, schema):
        state = SearchState(schema, [IDENTITY, UNDECIDED, MAP_MARKER])
        text = repr(state)
        assert "a=Identity()" in text
        assert "b=*" in text
        assert "c=#MAP#" in text

    def test_sentinels_have_stable_repr(self):
        assert repr(UNDECIDED) == "*"
        assert repr(MAP_MARKER) == "#MAP#"
