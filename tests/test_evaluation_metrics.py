"""Unit tests for the evaluation metrics (Δcore, Δcosts, accuracy)."""

import pytest

from repro.core import Affidavit, explanation_cost, identity_configuration, trivial_explanation
from repro.datagen import generate_problem_instance
from repro.datagen.datasets import load_dataset
from repro.evaluation import (
    alignment_precision_recall,
    cell_accuracy,
    evaluate_result,
    macro_average,
)
from repro.evaluation.metrics import InstanceMetrics


@pytest.fixture(scope="module")
def generated():
    table = load_dataset("balance", seed=5)
    return generate_problem_instance(table, eta=0.3, tau=0.3, seed=21, name="balance-gen")


@pytest.fixture(scope="module")
def result(generated):
    return Affidavit(identity_configuration()).explain(generated.instance)


class TestCellAccuracy:
    def test_reference_functions_have_perfect_accuracy(self, generated):
        assert cell_accuracy(generated, generated.reference) == 1.0

    def test_trivial_explanation_accuracy_reflects_identity_attributes(self, generated):
        # The trivial explanation assigns the identity everywhere, so its
        # accuracy equals the fraction of cells the ground truth left unchanged.
        trivial = trivial_explanation(generated.instance)
        accuracy = cell_accuracy(generated, trivial)
        assert 0.0 <= accuracy <= 1.0
        transformed = set(generated.transformed_attributes)
        considered = [
            a for a in generated.instance.schema if a != generated.key_attribute
        ]
        if transformed & set(considered):
            assert accuracy < 1.0

    def test_key_attribute_ignored_by_default(self, generated):
        # Ignoring nothing makes the key attribute count, which the trivial
        # identity cannot translate, so accuracy must drop.
        trivial = trivial_explanation(generated.instance)
        with_key = cell_accuracy(generated, trivial, ignore_attributes=[])
        without_key = cell_accuracy(generated, trivial)
        assert with_key < without_key


class TestEvaluateResult:
    def test_metrics_are_consistent(self, generated, result):
        metrics = evaluate_result(generated, result)
        assert metrics.reference_core_size == generated.core_size
        assert metrics.result_core_size == result.explanation.core_size
        assert metrics.delta_core == pytest.approx(
            metrics.result_core_size / metrics.reference_core_size
        )
        assert metrics.reference_cost == explanation_cost(
            generated.instance, generated.reference
        )
        assert metrics.delta_costs == pytest.approx(
            metrics.result_cost / metrics.reference_cost
        )
        assert 0.0 <= metrics.accuracy <= 1.0
        assert metrics.runtime_seconds > 0

    def test_good_explanation_on_easy_setting(self, generated, result):
        metrics = evaluate_result(generated, result)
        # (η=0.3, τ=0.3) on a small categorical dataset: the search should be
        # close to the reference.
        assert metrics.accuracy >= 0.9
        assert 0.8 <= metrics.delta_core <= 1.2
        assert metrics.delta_costs <= 1.2

    def test_as_dict_round_trip(self, generated, result):
        metrics = evaluate_result(generated, result)
        as_dict = metrics.as_dict()
        assert as_dict["accuracy"] == metrics.accuracy
        assert set(as_dict) >= {"delta_core", "delta_costs", "runtime_seconds"}


class TestMacroAverage:
    def test_average_of_identical_runs(self):
        metric = InstanceMetrics(
            dataset="d", runtime_seconds=1.0, delta_core=0.9, delta_costs=1.1,
            accuracy=0.95, result_cost=10, reference_cost=9, result_core_size=9,
            reference_core_size=10,
        )
        aggregate = macro_average([metric, metric])
        assert aggregate.n_runs == 2
        assert aggregate.delta_core == pytest.approx(0.9)
        assert aggregate.accuracy == pytest.approx(0.95)
        assert aggregate.as_row()["t"] == pytest.approx(1.0)

    def test_average_of_different_runs(self):
        low = InstanceMetrics(
            dataset="d", runtime_seconds=1.0, delta_core=0.5, delta_costs=1.0,
            accuracy=0.5, result_cost=1, reference_cost=1, result_core_size=1,
            reference_core_size=2,
        )
        high = InstanceMetrics(
            dataset="d", runtime_seconds=3.0, delta_core=1.5, delta_costs=2.0,
            accuracy=1.0, result_cost=2, reference_cost=1, result_core_size=3,
            reference_core_size=2,
        )
        aggregate = macro_average([low, high])
        assert aggregate.runtime_seconds == pytest.approx(2.0)
        assert aggregate.delta_core == pytest.approx(1.0)
        assert aggregate.accuracy == pytest.approx(0.75)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            macro_average([])


class TestAlignmentPrecisionRecall:
    def test_reference_alignment_scores_perfectly(self, generated):
        scores = alignment_precision_recall(generated, generated.reference)
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_trivial_alignment_scores_zero(self, generated):
        scores = alignment_precision_recall(
            generated, trivial_explanation(generated.instance)
        )
        assert scores["recall"] == 0.0
        assert scores["f1"] == 0.0

    def test_search_result_alignment_quality(self, generated, result):
        scores = alignment_precision_recall(generated, result.explanation)
        assert scores["f1"] >= 0.8
