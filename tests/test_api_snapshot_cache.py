"""Tests of the session's content-addressed binary snapshot cache."""

from __future__ import annotations

import pytest

from repro.api import ExplainRequest, Session
from repro.api import session as session_module
from repro.core import identity_configuration
from repro.dataio import write_csv


@pytest.fixture
def data_root(tmp_path, running_source, running_target):
    root = tmp_path / "data"
    root.mkdir()
    write_csv(running_source, root / "source.csv")
    write_csv(running_target, root / "target.csv")
    return root


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "snapcache"


@pytest.fixture
def session(data_root, cache_dir):
    return (
        Session()
        .with_config(identity_configuration(max_expansions=50, seed=5))
        .with_data_root(data_root)
        .with_snapshot_cache(cache_dir)
    )


@pytest.fixture
def request_paths():
    return ExplainRequest(source_path="source.csv", target_path="target.csv")


class TestSnapshotCache:
    def test_miss_writes_a_cache_entry(self, session, cache_dir, request_paths):
        outcome = session.explain(request_paths)
        assert outcome.result.cost >= 0
        entries = list(cache_dir.glob("*.afbuf"))
        assert len(entries) == 1

    def test_hit_skips_csv_parsing(self, session, cache_dir, request_paths,
                                   monkeypatch):
        reference = session.explain(request_paths)
        assert list(cache_dir.glob("*.afbuf"))

        def no_csv(self, data_root=None):
            raise AssertionError("cache hit must not parse CSV")

        monkeypatch.setattr(ExplainRequest, "load_tables", no_csv)
        cached = session.explain(request_paths)
        assert cached.result.cost == reference.result.cost
        assert cached.result.explanation.functions == \
            reference.result.explanation.functions
        assert cached.result.expansions == reference.result.expansions

    def test_corrupt_entry_falls_back_to_csv_and_rewrites(
            self, session, cache_dir, request_paths):
        session.explain(request_paths)
        entry = next(iter(cache_dir.glob("*.afbuf")))
        entry.write_bytes(b"not a buffer pack")
        outcome = session.explain(request_paths)
        assert outcome.result.cost >= 0
        assert entry.read_bytes() != b"not a buffer pack"

    def test_inline_csv_requests_are_cached_too(self, cache_dir, running_source,
                                                running_target):
        from repro.dataio import to_csv_text

        session = (
            Session()
            .with_config(identity_configuration(max_expansions=50, seed=5))
            .with_snapshot_cache(cache_dir)
        )
        request = ExplainRequest(
            source_csv=to_csv_text(running_source),
            target_csv=to_csv_text(running_target),
        )
        session.explain(request)
        assert len(list(cache_dir.glob("*.afbuf"))) == 1
        session.explain(request)
        assert len(list(cache_dir.glob("*.afbuf"))) == 1

    def test_different_snapshots_get_different_entries(
            self, session, cache_dir, data_root, request_paths, running_target):
        session.explain(request_paths)
        write_csv(running_target, data_root / "other.csv")
        session.explain(ExplainRequest(
            source_path="other.csv", target_path="target.csv"
        ))
        assert len(list(cache_dir.glob("*.afbuf"))) == 2

    def test_no_cache_dir_means_no_files(self, data_root, tmp_path,
                                         request_paths):
        session = (
            Session()
            .with_config(identity_configuration(max_expansions=50, seed=5))
            .with_data_root(data_root)
        )
        session.explain(request_paths)
        assert not list(tmp_path.glob("**/*.afbuf"))

    def test_unreadable_path_surfaces_as_validation_error(self, session):
        from repro.api import RequestValidationError

        with pytest.raises(RequestValidationError):
            session.explain(ExplainRequest(
                source_path="missing.csv", target_path="target.csv"
            ))
