"""Unit tests for repro.dataio.csv_io."""

import pytest

from repro.dataio import (
    Schema,
    Table,
    TableError,
    read_csv,
    read_csv_text,
    read_snapshot_pair,
    to_csv_text,
    write_csv,
)


@pytest.fixture
def sample_table():
    return Table(Schema(["id", "name", "value"]), [("1", "alpha", "10"), ("2", "be,ta", "20")])


class TestReadCsvText:
    def test_parses_header_and_rows(self):
        table = read_csv_text("a,b\n1,2\n3,4\n")
        assert table.schema == Schema(["a", "b"])
        assert table.rows() == [("1", "2"), ("3", "4")]

    def test_without_header(self):
        table = read_csv_text("1,2\n3,4\n", has_header=False)
        assert table.schema == Schema(["col_0", "col_1"])
        assert table.n_rows == 2

    def test_custom_delimiter(self):
        table = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert table.row(0) == ("1", "2")

    def test_quoted_fields(self):
        table = read_csv_text('a,b\n"x,y",2\n')
        assert table.row(0) == ("x,y", "2")

    def test_empty_input_raises(self):
        with pytest.raises(TableError):
            read_csv_text("")

    def test_ragged_line_raises_with_line_number(self):
        with pytest.raises(TableError, match="line 3"):
            read_csv_text("a,b\n1,2\n1,2,3\n")


class TestRoundTrip:
    def test_to_csv_text_round_trip(self, sample_table):
        text = to_csv_text(sample_table)
        parsed = read_csv_text(text)
        assert parsed == sample_table

    def test_file_round_trip(self, sample_table, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(sample_table, path)
        loaded = read_csv(path)
        assert loaded == sample_table

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "does-not-exist.csv")


class TestSnapshotPair:
    def test_matching_schemas(self, sample_table, tmp_path):
        source_path = tmp_path / "source.csv"
        target_path = tmp_path / "target.csv"
        write_csv(sample_table, source_path)
        write_csv(sample_table, target_path)
        source, target = read_snapshot_pair(source_path, target_path)
        assert source.schema == target.schema

    def test_schema_mismatch_raises(self, sample_table, tmp_path):
        other = Table(Schema(["x"]), [("1",)])
        source_path = tmp_path / "source.csv"
        target_path = tmp_path / "target.csv"
        write_csv(sample_table, source_path)
        write_csv(other, target_path)
        with pytest.raises(TableError):
            read_snapshot_pair(source_path, target_path)

    def test_projection_to_shared_attributes(self, sample_table, tmp_path):
        source_path = tmp_path / "source.csv"
        target_path = tmp_path / "target.csv"
        write_csv(sample_table, source_path)
        write_csv(sample_table, target_path)
        source, target = read_snapshot_pair(
            source_path, target_path, attributes=["id", "value"]
        )
        assert source.schema == Schema(["id", "value"])
        assert target.schema == Schema(["id", "value"])
