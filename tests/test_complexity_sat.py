"""Unit tests for the 3-SAT machinery (formulas, DPLL solver)."""

import random

import pytest

from repro.complexity import (
    Clause,
    Formula,
    Literal,
    clause,
    example_formula,
    formula,
    is_satisfiable,
    max_satisfiable_clauses,
    random_formula,
    solve,
)


class TestLiteralsAndClauses:
    def test_literal_parsing_shorthand(self):
        c = clause("v1", "!v2", "¬v3")
        assert c.literals[0] == Literal("v1", True)
        assert c.literals[1] == Literal("v2", False)
        assert c.literals[2] == Literal("v3", False)

    def test_literal_negation(self):
        assert Literal("x", True).negated() == Literal("x", False)

    def test_literal_satisfaction(self):
        assert Literal("x", True).satisfied_by({"x": True}) is True
        assert Literal("x", False).satisfied_by({"x": True}) is False
        assert Literal("x", True).satisfied_by({}) is None

    def test_clause_requires_literals(self):
        with pytest.raises(ValueError):
            Clause(())

    def test_clause_rejects_repeated_variables(self):
        with pytest.raises(ValueError):
            clause("v1", "!v1")

    def test_clause_satisfaction(self):
        c = clause("v1", "!v2")
        assert c.satisfied_by({"v1": True, "v2": True}) is True
        assert c.satisfied_by({"v1": False, "v2": True}) is False
        assert c.satisfied_by({"v1": False}) is None


class TestFormula:
    def test_variables_ordered_by_first_occurrence(self):
        f = example_formula()
        assert f.variables == ["v1", "v2", "v3", "v4"]
        assert f.n_clauses == 3

    def test_formula_requires_clauses(self):
        with pytest.raises(ValueError):
            Formula(())

    def test_satisfaction(self):
        f = example_formula()
        model = {"v1": False, "v2": True, "v3": False, "v4": False}
        assert f.satisfied_by(model) is True
        assert f.n_satisfied_clauses(model) == 3
        falsifying = {"v1": True, "v2": False, "v3": True, "v4": False}
        assert f.satisfied_by(falsifying) is False

    def test_repr_contains_connectives(self):
        assert "∧" in repr(example_formula())
        assert "∨" in repr(example_formula().clauses[0])


class TestDpll:
    def test_example_formula_is_satisfiable(self):
        model = solve(example_formula())
        assert model is not None
        assert example_formula().satisfied_by(model) is True

    def test_unsatisfiable_formula(self):
        f = formula(clause("v1"), clause("!v1"))
        assert solve(f) is None
        assert not is_satisfiable(f)

    def test_unsatisfiable_three_variable_formula(self):
        # (x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ y) ∧ (¬x ∨ ¬y) is unsatisfiable.
        f = formula(
            clause("x", "y"), clause("x", "!y"), clause("!x", "y"), clause("!x", "!y")
        )
        assert not is_satisfiable(f)

    def test_solution_covers_all_variables(self):
        model = solve(example_formula())
        assert set(model) == {"v1", "v2", "v3", "v4"}

    def test_respects_partial_assignment(self):
        f = formula(clause("v1", "v2"))
        model = solve(f, {"v1": False})
        assert model is not None
        assert model["v2"] is True

    def test_random_formulas_agree_with_bruteforce(self):
        rng = random.Random(5)
        for index in range(10):
            f = random_formula(5, 8, rng=rng)
            best_count, _ = max_satisfiable_clauses(f)
            assert is_satisfiable(f) == (best_count == f.n_clauses)


class TestMaxSat:
    def test_max_satisfiable_clauses_on_unsat_formula(self):
        f = formula(clause("v1"), clause("!v1"))
        best_count, assignment = max_satisfiable_clauses(f)
        assert best_count == 1
        assert f.n_satisfied_clauses(assignment) == 1

    def test_max_satisfiable_on_satisfiable_formula(self):
        best_count, assignment = max_satisfiable_clauses(example_formula())
        assert best_count == 3
        assert example_formula().satisfied_by(assignment) is True


class TestRandomFormula:
    def test_dimensions(self):
        f = random_formula(6, 10, rng=random.Random(0))
        assert f.n_clauses == 10
        assert all(len(c) == 3 for c in f.clauses)
        assert set(f.variables) <= {f"v{i}" for i in range(1, 7)}

    def test_requires_enough_variables(self):
        with pytest.raises(ValueError):
            random_formula(2, 3)

    def test_deterministic_for_seed(self):
        assert random_formula(5, 5, rng=random.Random(1)) == random_formula(
            5, 5, rng=random.Random(1)
        )
