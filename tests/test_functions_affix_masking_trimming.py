"""Unit tests for the affix, masking and trimming meta functions."""

import pytest

from repro.functions import (
    BackCharTrimming,
    BackCharTrimmingMeta,
    BackMasking,
    BackMaskingMeta,
    FrontCharTrimming,
    FrontCharTrimmingMeta,
    FrontMasking,
    FrontMaskingMeta,
    Prefixing,
    PrefixingMeta,
    PrefixReplacement,
    PrefixReplacementMeta,
    Suffixing,
    SuffixingMeta,
    SuffixReplacement,
    SuffixReplacementMeta,
)


class TestPrefixingAndSuffixing:
    def test_prefixing(self):
        assert Prefixing("X_").apply("abc") == "X_abc"
        assert Prefixing("X_").description_length == 1

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Prefixing("")

    def test_suffixing(self):
        assert Suffixing("_v2").apply("abc") == "abc_v2"

    def test_prefixing_meta(self):
        candidates = list(PrefixingMeta().induce("123", "ID123"))
        assert candidates == [Prefixing("ID")]

    def test_prefixing_meta_requires_proper_superstring(self):
        assert not list(PrefixingMeta().induce("123", "123"))
        assert not list(PrefixingMeta().induce("123", "124"))
        assert not list(PrefixingMeta().induce("", "abc"))

    def test_suffixing_meta(self):
        assert list(SuffixingMeta().induce("123", "123-a")) == [Suffixing("-a")]
        assert not list(SuffixingMeta().induce("123", "a-123"))


class TestPrefixReplacement:
    def test_running_example_date_function(self):
        function = PrefixReplacement("9999123", "2018070")
        assert function.apply("99991231") == "20180701"
        # otherwise x -> x
        assert function.apply("20130416") == "20130416"

    def test_description_length(self):
        assert PrefixReplacement("a", "b").description_length == 2

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            PrefixReplacement("", "x")
        with pytest.raises(ValueError):
            PrefixReplacement("x", "x")

    def test_meta_induces_minimal_replacement(self):
        candidates = list(PrefixReplacementMeta().induce("99991231", "20180701"))
        assert candidates == [PrefixReplacement("9999123", "2018070")]

    def test_meta_skips_equal_values(self):
        assert not list(PrefixReplacementMeta().induce("abc", "abc"))

    def test_meta_skips_pure_suffix_extension(self):
        # common suffix is the whole source, nothing to replace in front
        assert not list(PrefixReplacementMeta().induce("abc", "abc"))


class TestSuffixReplacement:
    def test_apply(self):
        function = SuffixReplacement("USD", "EUR")
        assert function.apply("100 USD") == "100 EUR"
        assert function.apply("100 GBP") == "100 GBP"

    def test_meta(self):
        candidates = list(SuffixReplacementMeta().induce("100 USD", "100 EUR"))
        assert candidates == [SuffixReplacement("USD", "EUR")]

    def test_invalid(self):
        with pytest.raises(ValueError):
            SuffixReplacement("", "x")


class TestMasking:
    def test_front_masking(self):
        function = FrontMasking("***")
        assert function.apply("1234567") == "***4567"
        assert function.apply("12") is None  # shorter than the mask

    def test_back_masking(self):
        function = BackMasking("XX")
        assert function.apply("abcdef") == "abcdXX"

    def test_front_masking_meta_requires_equal_lengths(self):
        assert list(FrontMaskingMeta().induce("1234", "XX34")) == [FrontMasking("XX")]
        assert not list(FrontMaskingMeta().induce("1234", "XX345"))
        assert not list(FrontMaskingMeta().induce("1234", "1234"))

    def test_back_masking_meta(self):
        assert list(BackMaskingMeta().induce("1234", "12XX")) == [BackMasking("XX")]
        assert not list(BackMaskingMeta().induce("1234", "1234"))

    def test_masking_description_length(self):
        assert FrontMasking("**").description_length == 1
        assert BackMasking("**").description_length == 1

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            FrontMasking("")
        with pytest.raises(ValueError):
            BackMasking("")


class TestTrimming:
    def test_front_char_trimming(self):
        function = FrontCharTrimming("0")
        assert function.apply("000123") == "123"
        assert function.apply("123") == "123"
        assert function.apply("000") == ""

    def test_back_char_trimming(self):
        function = BackCharTrimming("0")
        assert function.apply("12000") == "12"

    def test_single_character_required(self):
        with pytest.raises(ValueError):
            FrontCharTrimming("00")
        with pytest.raises(ValueError):
            BackCharTrimming("")

    def test_front_trimming_meta(self):
        assert list(FrontCharTrimmingMeta().induce("000123", "123")) == [FrontCharTrimming("0")]

    def test_front_trimming_meta_rejects_mixed_prefix(self):
        assert not list(FrontCharTrimmingMeta().induce("0a123", "123"))

    def test_front_trimming_meta_rejects_incomplete_trim(self):
        # stripping '0' from '000123' would not yield '0123'
        assert not list(FrontCharTrimmingMeta().induce("000123", "0123"))

    def test_back_trimming_meta(self):
        assert list(BackCharTrimmingMeta().induce("12000", "12")) == [BackCharTrimming("0")]
        assert not list(BackCharTrimmingMeta().induce("12000", "12000"))

    def test_description_length(self):
        assert FrontCharTrimming("0").description_length == 1
