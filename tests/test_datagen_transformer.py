"""Unit tests for ground-truth transformation sampling (Section 5.1)."""

import random

import pytest

from repro.dataio import Schema, Table
from repro.datagen.transformer import (
    NUMERIC_SAMPLERS,
    STRING_SAMPLERS,
    sample_attribute_function,
    sample_transformations,
)
from repro.functions import ValueMapping


@pytest.fixture
def mixed_table():
    schema = Schema(["code", "amount", "label"])
    rows = [(f"c{i:03d}", str(100 * (i + 1)), f"label_{i % 5}") for i in range(50)]
    return Table(schema, rows)


class TestSampleAttributeFunction:
    def test_numeric_column_gets_total_function(self):
        rng = random.Random(3)
        values = [str(10 * i) for i in range(1, 30)]
        for _ in range(10):
            function = sample_attribute_function(values, rng)
            assert function is not None
            for value in values:
                assert function.apply(value) is not None

    def test_string_column_gets_total_function(self):
        rng = random.Random(4)
        values = [f"code_{i}" for i in range(20)]
        for _ in range(10):
            function = sample_attribute_function(values, rng)
            assert function is not None
            for value in values:
                assert function.apply(value) is not None

    def test_sampled_function_changes_at_least_one_value(self):
        rng = random.Random(5)
        values = [f"v{i}" for i in range(10)]
        function = sample_attribute_function(values, rng)
        assert any(function.apply(value) != value for value in values)

    def test_empty_value_list_returns_none(self):
        assert sample_attribute_function([], random.Random(0)) is None

    def test_exclusion_of_families(self):
        rng = random.Random(6)
        values = [str(i) for i in range(1, 40)]
        for _ in range(20):
            function = sample_attribute_function(
                values, rng, exclude=[name for name in NUMERIC_SAMPLERS if name != "constant"]
            )
            if function is not None:
                assert function.meta_name == "constant"

    def test_value_mapping_sampler_produces_permutation(self):
        rng = random.Random(7)
        values = [f"x{i}" for i in range(10)]
        sampler = STRING_SAMPLERS["value_mapping"]
        mapping = sampler(values, rng)
        assert isinstance(mapping, ValueMapping)
        assert set(mapping.entries.keys()) == set(values)
        assert set(mapping.entries.values()) == set(values)
        assert any(key != value for key, value in mapping.entries.items())


class TestSampleTransformations:
    def test_tau_zero_keeps_everything_identity(self, mixed_table):
        functions = sample_transformations(mixed_table, 0.0, random.Random(1))
        assert all(function.is_identity for function in functions.values())

    def test_tau_one_never_transforms_every_attribute(self, mixed_table):
        # The protocol rejects samplings in which every attribute changes.
        for seed in range(5):
            functions = sample_transformations(mixed_table, 1.0, random.Random(seed))
            assert any(function.is_identity for function in functions.values())

    def test_all_attributes_receive_a_function(self, mixed_table):
        functions = sample_transformations(mixed_table, 0.5, random.Random(2))
        assert set(functions) == set(mixed_table.schema)

    def test_sampled_functions_are_total_on_their_column(self, mixed_table):
        functions = sample_transformations(mixed_table, 0.8, random.Random(3))
        for attribute, function in functions.items():
            for value in mixed_table.column_view(attribute):
                assert function.apply(value) is not None

    def test_excluded_attributes_stay_identity(self, mixed_table):
        functions = sample_transformations(
            mixed_table, 1.0, random.Random(4), exclude_attributes=["code"]
        )
        assert functions["code"].is_identity

    def test_invalid_tau_rejected(self, mixed_table):
        with pytest.raises(ValueError):
            sample_transformations(mixed_table, 1.5, random.Random(0))

    def test_deterministic_given_seed(self, mixed_table):
        first = sample_transformations(mixed_table, 0.5, random.Random(9))
        second = sample_transformations(mixed_table, 0.5, random.Random(9))
        assert first == second
