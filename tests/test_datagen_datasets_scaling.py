"""Unit tests for the surrogate dataset catalog and the scaled-instance families."""

import pytest

from repro.datagen import DISTINCT_RATIO_THRESHOLD, generate_scaled_family, prepare_dataset
from repro.datagen.datasets import (
    DATASETS,
    TABLE2_DATASET_NAMES,
    get_dataset_entry,
    load_dataset,
)
from repro.datagen.datasets.base import (
    DatasetSpec,
    DecimalColumn,
    IntegerColumn,
    MissingMixin,
    categorical,
    graded,
)


class TestColumnSpecs:
    def test_categorical_only_emits_listed_values(self, rng):
        column = categorical("a", "b", "c")
        assert set(column.generate(100, rng)) <= {"a", "b", "c"}

    def test_integer_column_respects_bounds_and_padding(self, rng):
        column = IntegerColumn(5, 20, zero_pad=4)
        cells = column.generate(50, rng)
        assert all(len(cell) == 4 for cell in cells)
        assert all(5 <= int(cell) <= 20 for cell in cells)

    def test_integer_step_snapping(self, rng):
        column = IntegerColumn(0, 100, step=10)
        assert all(int(cell) % 10 == 0 for cell in column.generate(50, rng))

    def test_decimal_column_precision(self, rng):
        column = DecimalColumn(0.0, 1.0, decimals=2)
        cells = column.generate(20, rng)
        assert all("." in cell and len(cell.split(".")[1]) == 2 for cell in cells)

    def test_missing_mixin_blanks_cells(self, rng):
        column = MissingMixin(categorical("x"), missing_rate=0.5, missing_token="?")
        cells = column.generate(200, rng)
        assert 0 < cells.count("?") < 200

    def test_graded_labels(self, rng):
        column = graded("lvl", 3)
        assert set(column.generate(50, rng)) <= {"lvl1", "lvl2", "lvl3"}

    def test_dataset_spec_build_is_deterministic(self):
        entry = get_dataset_entry("iris")
        assert entry.build(50, seed=9) == entry.build(50, seed=9)
        assert entry.build(50, seed=9) != entry.build(50, seed=10)

    def test_dataset_spec_rejects_empty(self):
        spec = DatasetSpec("x", (("a", categorical("1")),), default_records=10)
        with pytest.raises(ValueError):
            spec.build(0)


class TestCatalog:
    def test_all_table2_datasets_present(self):
        expected = {
            "iris", "balance", "chess", "abalone", "nursery", "bridges",
            "echocardiogram", "breast-cancer", "adult", "ncvoter-1k", "letter",
            "hepatitis", "horse-colic", "fd-reduced-30", "plista", "flight-1k",
            "uniprot",
        }
        assert expected <= set(TABLE2_DATASET_NAMES)
        assert "flight-500k" in DATASETS and "flight-500k" not in TABLE2_DATASET_NAMES

    def test_unknown_dataset_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_dataset_entry("no-such-dataset")

    def test_default_record_counts_match_paper(self):
        assert DATASETS["iris"].paper_records == 150
        assert DATASETS["chess"].paper_records == 28_056
        assert DATASETS["fd-reduced-30"].paper_records == 250_000
        assert load_dataset("iris").n_rows == 150

    def test_record_count_override(self):
        assert load_dataset("adult", 500).n_rows == 500

    @pytest.mark.parametrize("name", [n for n in TABLE2_DATASET_NAMES])
    def test_prepared_attribute_counts_match_table2(self, name):
        entry = get_dataset_entry(name)
        n_records = min(entry.paper_records, 1_000)
        table = entry.build(n_records, seed=0)
        prepared = prepare_dataset(table)
        # +1 for the artificial key added later by the generation protocol.
        assert len(prepared.schema) + 1 == entry.paper_attributes

    @pytest.mark.parametrize("name", ["iris", "nursery", "plista"])
    def test_no_column_exceeds_distinct_threshold(self, name):
        entry = get_dataset_entry(name)
        table = entry.build(min(entry.paper_records, 1_000), seed=0)
        for attribute, stats in table.stats().items():
            assert stats.distinct_ratio <= DISTINCT_RATIO_THRESHOLD, attribute


class TestScaledFamilies:
    def test_family_shares_transformations_across_scales(self):
        table = load_dataset("flight-500k", 2_000, seed=1)
        family = generate_scaled_family(
            table, eta=0.3, tau=0.3, fractions=(0.5, 1.0), seed=3
        )
        half = family.instance_at(0.5)
        full = family.instance_at(1.0)
        for attribute, function in full.transformations.items():
            # value mappings are restricted per scale; other families identical
            if function.meta_name != "value_mapping":
                assert half.transformations[attribute] == function

    def test_record_counts_scale_linearly(self):
        table = load_dataset("flight-500k", 2_000, seed=1)
        family = generate_scaled_family(
            table, eta=0.3, tau=0.3, fractions=(0.25, 0.5, 1.0), seed=3
        )
        sizes = [generated.instance.n_source_records for _, generated in family]
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[1] == pytest.approx(sizes[2] / 2, rel=0.05)
        assert sizes[0] == pytest.approx(sizes[2] / 4, rel=0.05)

    def test_scaled_references_are_valid(self):
        table = load_dataset("flight-500k", 1_000, seed=1)
        family = generate_scaled_family(
            table, eta=0.3, tau=0.3, fractions=(0.4, 1.0), seed=5,
            validate_reference=False,
        )
        for _, generated in family:
            generated.reference.validate(generated.instance)

    def test_invalid_fraction_rejected(self):
        table = load_dataset("iris", seed=1)
        with pytest.raises(ValueError):
            generate_scaled_family(table, eta=0.3, tau=0.3, fractions=(0.0, 1.0))
