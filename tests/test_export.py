"""Unit tests for the export layer: JSON serialisation, SQL scripts, reports."""

import json

import pytest

from repro.core import Affidavit, explanation_from_functions, identity_configuration
from repro.datagen.running_example import (
    reference_functions,
    running_example_instance,
)
from repro.export import (
    SerializationError,
    describe_function,
    explanation_from_dict,
    explanation_from_json,
    explanation_to_dict,
    explanation_to_json,
    explanation_to_sql,
    function_from_dict,
    function_to_dict,
    function_to_sql_expression,
    quote_identifier,
    quote_literal,
    record_level_sql,
    render_report,
)
from repro.functions import (
    Addition,
    ConstantValue,
    DateConversion,
    Division,
    FrontMasking,
    IDENTITY,
    Prefixing,
    PrefixReplacement,
    Uppercasing,
    ValueMapping,
)


@pytest.fixture(scope="module")
def instance():
    return running_example_instance()


@pytest.fixture(scope="module")
def reference(instance):
    return explanation_from_functions(instance, reference_functions())


class TestFunctionSerialization:
    @pytest.mark.parametrize(
        "function",
        [
            IDENTITY,
            Uppercasing(),
            ConstantValue("k $"),
            Addition(-5),
            Division(1000),
            Prefixing("X_"),
            PrefixReplacement("9999123", "2018070"),
            FrontMasking("**"),
            DateConversion("yyyy-mm-dd", "yyyymmdd"),
            ValueMapping({"a": "b", "c": "d"}),
        ],
    )
    def test_round_trip(self, function):
        spec = function_to_dict(function)
        rebuilt = function_from_dict(spec)
        assert rebuilt == function
        assert rebuilt.description_length == function.description_length
        # behaviour preserved on a probe value
        assert rebuilt.apply("9999123100") == function.apply("9999123100")

    def test_spec_is_json_compatible(self):
        spec = function_to_dict(Division(1000))
        assert json.loads(json.dumps(spec)) == spec

    def test_unknown_meta_rejected(self):
        with pytest.raises(SerializationError):
            function_from_dict({"meta": "teleportation", "parameters": []})

    def test_missing_meta_rejected(self):
        with pytest.raises(SerializationError):
            function_from_dict({"parameters": []})

    def test_bad_parameters_rejected(self):
        with pytest.raises(SerializationError):
            function_from_dict({"meta": "division", "parameters": ["0"]})
        with pytest.raises(SerializationError):
            function_from_dict({"meta": "constant", "parameters": "not-a-list"})

    def test_value_mapping_requires_entries(self):
        with pytest.raises(SerializationError):
            function_from_dict({"meta": "value_mapping", "parameters": []})


class TestExplanationSerialization:
    def test_dict_round_trip(self, instance, reference):
        payload = explanation_to_dict(reference)
        rebuilt = explanation_from_dict(payload)
        assert rebuilt.functions == reference.functions
        assert rebuilt.alignment == reference.alignment
        assert rebuilt.deleted_source_ids == reference.deleted_source_ids
        assert rebuilt.inserted_target_ids == reference.inserted_target_ids
        assert rebuilt.is_valid(instance)

    def test_json_round_trip(self, instance, reference):
        text = explanation_to_json(reference)
        rebuilt = explanation_from_json(text)
        assert rebuilt.functions == reference.functions
        assert rebuilt.is_valid(instance)

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            explanation_from_json("{not json")
        with pytest.raises(SerializationError):
            explanation_from_json("[]")

    def test_missing_functions_rejected(self):
        with pytest.raises(SerializationError):
            explanation_from_dict({"alignment": {}})


class TestSqlExport:
    def test_quoting(self):
        assert quote_literal("o'neill") == "'o''neill'"
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_expressions_for_common_families(self):
        assert function_to_sql_expression("v", IDENTITY) == '"v"'
        assert function_to_sql_expression("v", ConstantValue("k $")) == "'k $'"
        assert "UPPER" in function_to_sql_expression("v", Uppercasing())
        assert "/ 1000" in function_to_sql_expression("v", Division(1000))
        assert "|| \"v\"" in function_to_sql_expression("v", Prefixing("X_"))
        assert "CASE" in function_to_sql_expression("v", PrefixReplacement("a", "b"))
        assert "CASE" in function_to_sql_expression("v", ValueMapping({"a": "b"}))

    def test_unsupported_families_return_none(self):
        assert function_to_sql_expression("v", FrontMasking("**")) is None
        assert function_to_sql_expression("v", ValueMapping({})) is None

    def test_generalised_script_structure(self, instance, reference):
        script = explanation_to_sql(instance, reference, table_name="erp_items")
        assert script.count("DELETE FROM") == reference.n_deleted
        assert script.count("INSERT INTO") == reference.n_inserted
        assert script.count("UPDATE") == 1  # one generalised UPDATE statement
        assert '"erp_items"' in script
        assert "/ 1000" in script

    def test_record_level_script_is_longer(self, instance, reference):
        generalised = explanation_to_sql(instance, reference)
        per_record = record_level_sql(instance, reference)
        assert per_record.count("UPDATE") == reference.core_size
        assert len(per_record) > len(generalised) / 2

    def test_key_attributes_limit_predicates(self, instance, reference):
        script = record_level_sql(instance, reference, key_attributes=["ID1"])
        # predicates mention only the key attribute
        assert 'WHERE "ID1" =' in script
        assert 'AND "ID2"' not in script


class TestReport:
    def test_report_mentions_all_sections(self, instance, reference):
        report = render_report(instance, reference)
        assert "attribute transformations" in report
        assert "record-level changes" in report
        assert "deleted records" in report
        assert "inserted records" in report
        assert "compression ratio" in report

    def test_report_on_search_result(self, instance):
        result = Affidavit(identity_configuration()).explain(instance)
        report = render_report(instance, result.explanation, title="running example")
        assert "running example" in report
        assert "value mapping" in report  # the reassigned key attributes

    def test_describe_function(self):
        assert describe_function("a", IDENTITY) == "a: unchanged"
        assert "value mapping" in describe_function("a", ValueMapping({"x": "y"}))
        assert "psi=1" in describe_function("a", Division(10))
