"""Unit tests for repro.dataio.table."""

import pytest

from repro.dataio import Schema, Table, TableError


@pytest.fixture
def schema():
    return Schema(["id", "name", "value"])


@pytest.fixture
def table(schema):
    return Table(schema, [("1", "a", "10"), ("2", "b", "20"), ("3", "a", "30")])


class TestConstruction:
    def test_empty_table(self, schema):
        table = Table(schema)
        assert table.n_rows == 0
        assert not table
        assert table.n_columns == 3

    def test_rows_are_coerced_to_strings(self, schema):
        table = Table(schema, [(1, "a", 10.5)])
        assert table.row(0) == ("1", "a", "10.5")

    def test_ragged_row_rejected(self, schema):
        with pytest.raises(TableError):
            Table(schema, [("1", "a")])

    def test_from_dicts(self, schema):
        table = Table.from_dicts(schema, [{"id": "1", "name": "x"}], default="?")
        assert table.row(0) == ("1", "x", "?")

    def test_from_columns(self, schema):
        table = Table.from_columns(schema, {"id": ["1"], "name": ["n"], "value": ["9"]})
        assert table.row(0) == ("1", "n", "9")

    def test_from_columns_missing_column(self, schema):
        with pytest.raises(TableError):
            Table.from_columns(schema, {"id": ["1"], "name": ["n"]})

    def test_from_columns_length_mismatch(self, schema):
        with pytest.raises(TableError):
            Table.from_columns(schema, {"id": ["1"], "name": ["n"], "value": []})

    def test_copy_is_independent(self, table):
        clone = table.copy()
        clone.append(("9", "z", "90"))
        assert table.n_rows == 3
        assert clone.n_rows == 4


class TestAccess:
    def test_row_and_cell(self, table):
        assert table.row(1) == ("2", "b", "20")
        assert table.cell(2, "value") == "30"

    def test_row_out_of_range(self, table):
        with pytest.raises(TableError):
            table.row(3)

    def test_cell_out_of_range(self, table):
        with pytest.raises(TableError):
            table.cell(99, "id")

    def test_column_returns_copy(self, table):
        column = table.column("name")
        column.append("mutated")
        assert table.column("name") == ["a", "b", "a"]

    def test_column_view_reflects_storage(self, table):
        assert list(table.column_view("id")) == ["1", "2", "3"]

    def test_row_dict(self, table):
        assert table.row_dict(0) == {"id": "1", "name": "a", "value": "10"}

    def test_rows_with_indices(self, table):
        assert table.rows([2, 0]) == [("3", "a", "30"), ("1", "a", "10")]

    def test_iteration(self, table):
        assert list(table) == [("1", "a", "10"), ("2", "b", "20"), ("3", "a", "30")]

    def test_to_dicts(self, table):
        dicts = table.to_dicts()
        assert len(dicts) == 3
        assert dicts[1]["name"] == "b"


class TestRelationalOperations:
    def test_project(self, table):
        projected = table.project(["value", "id"])
        assert projected.schema == Schema(["value", "id"])
        assert projected.row(0) == ("10", "1")
        assert projected.n_rows == 3

    def test_select(self, table):
        selected = table.select(lambda row: row[1] == "a")
        assert selected.n_rows == 2
        assert [row[0] for row in selected] == ["1", "3"]

    def test_take_preserves_order(self, table):
        taken = table.take([2, 2, 0])
        assert [row[0] for row in taken] == ["3", "3", "1"]

    def test_drop_columns(self, table):
        dropped = table.drop_columns(["name"])
        assert dropped.schema == Schema(["id", "value"])
        assert dropped.row(0) == ("1", "10")

    def test_drop_unknown_column_raises(self, table):
        with pytest.raises(Exception):
            table.drop_columns(["missing"])

    def test_with_column_appends(self, table):
        extended = table.with_column("flag", ["x", "y", "z"])
        assert extended.schema.attributes[-1] == "flag"
        assert extended.cell(1, "flag") == "y"
        # original unchanged
        assert "flag" not in table.schema

    def test_with_column_at_position(self, table):
        extended = table.with_column("flag", ["x", "y", "z"], position=0)
        assert extended.schema.attributes[0] == "flag"
        assert extended.row(0) == ("x", "1", "a", "10")

    def test_with_column_wrong_length(self, table):
        with pytest.raises(TableError):
            table.with_column("flag", ["only-one"])

    def test_map_column(self, table):
        mapped = table.map_column("value", lambda cell: cell + "0")
        assert mapped.column("value") == ["100", "200", "300"]
        assert table.column("value") == ["10", "20", "30"]

    def test_concat(self, table):
        other = Table(table.schema, [("9", "z", "90")])
        combined = table.concat(other)
        assert combined.n_rows == 4
        assert combined.row(3) == ("9", "z", "90")

    def test_concat_schema_mismatch(self, table):
        other = Table(Schema(["x"]), [("1",)])
        with pytest.raises(TableError):
            table.concat(other)

    def test_head(self, table):
        assert table.head(2).n_rows == 2
        assert table.head(10).n_rows == 3


class TestDictionaryEncoding:
    def test_dictionary_round_trips_the_column(self, table):
        column = table.column_view("name")
        codes, codebook = column.dictionary()
        assert len(codes) == len(column)
        decode = list(codebook)
        assert [decode[code] for code in codes] == list(column)

    def test_dictionary_codes_are_dense_first_occurrence(self, table):
        codes, codebook = table.column_view("name").dictionary()
        assert codes == [0, 1, 0]              # a, b, a
        assert codebook == {"a": 0, "b": 1}

    def test_dictionary_is_cached(self, table):
        column = table.column_view("name")
        assert column.dictionary() is column.dictionary()

    def test_dictionary_invalidated_on_mutation(self, table):
        column = table.column_view("name")
        first = column.dictionary()
        column.append("z")
        codes, codebook = column.dictionary()
        assert column.dictionary() is not first
        assert codes == [0, 1, 0, 2]
        assert codebook["z"] == 2


class TestStatistics:
    def test_value_counts(self, table):
        counts = table.value_counts("name")
        assert counts["a"] == 2
        assert counts["b"] == 1

    def test_column_stats(self, table):
        stats = table.column_stats("value")
        assert stats.total == 3
        assert stats.distinct == 3
        assert stats.numeric == 3
        assert stats.missing == 0
        assert stats.numeric_ratio == 1.0

    def test_distinct_ratio(self, table):
        assert table.column_stats("name").distinct_ratio == pytest.approx(2 / 3)

    def test_empty_column_detection(self):
        schema = Schema(["a", "b"])
        table = Table(schema, [("", "1"), ("", "2")])
        assert table.column_stats("a").is_empty
        assert not table.column_stats("b").is_empty

    def test_stats_covers_all_attributes(self, table):
        assert set(table.stats()) == {"id", "name", "value"}

    def test_pretty_contains_header_and_rows(self, table):
        text = table.pretty()
        assert "id" in text and "name" in text
        assert "20" in text

    def test_pretty_truncation_note(self, schema):
        table = Table(schema, [(str(i), "n", "1") for i in range(30)])
        assert "more rows" in table.pretty(max_rows=5)


class TestEquality:
    def test_equal_tables(self, schema):
        rows = [("1", "a", "2")]
        assert Table(schema, rows) == Table(schema, rows)

    def test_different_rows_not_equal(self, schema):
        assert Table(schema, [("1", "a", "2")]) != Table(schema, [("1", "a", "3")])


class TestColumnType:
    def test_column_view_is_typed_and_zero_copy(self, table):
        column = table.column_view("id")
        from repro.dataio import Column
        assert isinstance(column, Column)
        assert table.column_view("id") is column

    def test_kind_inference(self):
        schema = Schema(["num", "text", "empty"])
        t = Table(schema, [("1", "a", ""), ("2.5", "b", ""), ("3", "1", "")])
        assert t.column_view("num").kind == "numeric"
        assert t.column_view("text").kind == "text"
        assert t.column_view("empty").kind == "empty"

    def test_value_counts_cached_and_invalidated_on_append(self):
        t = Table(Schema(["a"]), [("x",), ("x",), ("y",)])
        column = t.column_view("a")
        first = column.value_counts()
        assert first["x"] == 2
        assert column.value_counts() is first        # cached
        t.append(("x",))
        assert column.value_counts()["x"] == 3       # cache invalidated

    def test_table_value_counts_returns_a_safe_copy(self):
        t = Table(Schema(["a"]), [("x",), ("y",)])
        counts = t.value_counts("a")
        counts["x"] += 10
        assert t.value_counts("a")["x"] == 1

    def test_column_stats_served_from_cache(self):
        t = Table(Schema(["a"]), [("1",), ("",), ("2",), ("2",)])
        stats = t.column_stats("a")
        assert stats.total == 4
        assert stats.distinct == 3
        assert stats.missing == 1
        assert stats.numeric == 3

    def test_columns_returns_zero_copy_views_for_all_attributes(self, table):
        views = table.columns()
        assert set(views) == {"id", "name", "value"}
        assert views["id"] is table.column_view("id")

    def test_table_pickle_round_trip(self, table):
        import pickle
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.value_counts("name") == table.value_counts("name")

    def test_inplace_repeat_invalidates_cache(self):
        from repro.dataio import Column
        column = Column(["1", "2"])
        assert column.value_counts()["1"] == 1
        column *= 2
        assert column.value_counts()["1"] == 2


class TestFreezing:
    def test_freeze_forbids_append(self, table):
        table.freeze()
        with pytest.raises(TableError):
            table.append(("9", "z", "1"))

    def test_freeze_is_idempotent_and_returns_self(self, table):
        assert table.freeze() is table
        assert table.freeze().frozen

    def test_frozen_projection_shares_column_storage(self, table):
        table.freeze()
        projected = table.project(["id", "name"])
        assert projected.frozen
        assert projected.column_view("id") is table.column_view("id")

    def test_mutable_projection_copies_column_storage(self, table):
        projected = table.project(["id"])
        assert projected.column_view("id") is not table.column_view("id")
        assert projected.column_view("id") == list(table.column_view("id"))

    def test_problem_instance_freezes_snapshots(self):
        from repro.core import ProblemInstance
        schema = Schema(["a"])
        source, target = Table(schema, [("1",)]), Table(schema, [("2",)])
        ProblemInstance(source=source, target=target)
        assert source.frozen and target.frozen
