"""Tests of the 3-SAT → Explain-Table-Delta reduction (Theorem 3.12, Figure 2)."""

import random

from repro.complexity import (
    example_formula,
    extract_interpretation,
    formula,
    clause,
    interpretation_to_functions,
    is_satisfiable,
    random_formula,
    reduce_formula,
    solve_reduction_exact,
)
from repro.core import explanation_cost, explanation_from_functions
from repro.functions import BOOLEAN_NEGATION, IDENTITY


class TestReductionConstruction:
    def test_figure2_dimensions(self):
        # The example reduction of Figure 2 has 3 source and 11 target records.
        instance = reduce_formula(example_formula())
        assert instance.n_source_records == 3
        assert instance.n_target_records == 11
        assert list(instance.schema) == ["#", "v1", "v2", "v3", "v4"]

    def test_source_rows_encode_literal_polarity(self):
        instance = reduce_formula(example_formula())
        rows = {row[0]: row for row in instance.source}
        assert rows["c1"] == ("c1", "1", "1", "1", "-")
        assert rows["c2"] == ("c2", "0", "-", "-", "1")
        assert rows["c3"] == ("c3", "-", "-", "0", "-")

    def test_target_rows_per_clause(self):
        instance = reduce_formula(example_formula())
        tags = [row[0] for row in instance.target]
        assert tags.count("c1") == 7  # 2³ − 1 models of a 3-literal clause
        assert tags.count("c2") == 3  # 2² − 1
        assert tags.count("c3") == 1  # 2¹ − 1

    def test_target_rows_have_at_least_one_satisfied_literal(self):
        instance = reduce_formula(example_formula())
        for row in instance.target:
            literal_cells = [cell for cell in row[1:] if cell != "-"]
            assert "1" in literal_cells

    def test_registry_restricted_to_identity_and_negation(self):
        instance = reduce_formula(example_formula())
        assert set(instance.registry.names) == {"identity", "boolean_negation"}

    def test_function_description_lengths_are_zero(self):
        # Both allowed functions have ψ = 0, so costs are driven by |T⁺| alone.
        assert IDENTITY.description_length == 0
        assert BOOLEAN_NEGATION.description_length == 0


class TestInterpretationEncoding:
    def test_satisfying_interpretation_produces_one_target_per_clause(self):
        f = example_formula()
        instance = reduce_formula(f)
        model = {"v1": False, "v2": True, "v3": False, "v4": True}
        assert f.satisfied_by(model) is True
        functions = interpretation_to_functions(f, model)
        explanation = explanation_from_functions(instance, functions)
        assert explanation.n_deleted == 0
        assert explanation.core_size == f.n_clauses

    def test_falsifying_interpretation_leaves_clause_unexplained(self):
        f = example_formula()
        instance = reduce_formula(f)
        interpretation = {"v1": True, "v2": False, "v3": True, "v4": False}
        assert f.satisfied_by(interpretation) is False
        functions = interpretation_to_functions(f, interpretation)
        explanation = explanation_from_functions(instance, functions)
        assert explanation.n_deleted >= 1

    def test_unsatisfied_clause_count_matches_deletions(self):
        f = example_formula()
        instance = reduce_formula(f)
        interpretation = {"v1": True, "v2": False, "v3": True, "v4": False}
        functions = interpretation_to_functions(f, interpretation)
        explanation = explanation_from_functions(instance, functions)
        unsatisfied = f.n_clauses - f.n_satisfied_clauses(interpretation)
        assert explanation.n_deleted == unsatisfied

    def test_extract_interpretation_round_trip(self):
        f = example_formula()
        instance = reduce_formula(f)
        model = {"v1": False, "v2": True, "v3": False, "v4": True}
        explanation = explanation_from_functions(
            instance, interpretation_to_functions(f, model)
        )
        assert extract_interpretation(f, explanation) == model


class TestExactSolution:
    def test_satisfiable_formula_yields_zero_deletions(self):
        solution = solve_reduction_exact(example_formula())
        assert solution.is_satisfying
        assert solution.satisfied_clauses == 3
        assert example_formula().satisfied_by(solution.interpretation) is True

    def test_unsatisfiable_formula_cannot_explain_every_clause(self):
        f = formula(clause("v1"), clause("!v1"))
        solution = solve_reduction_exact(f)
        assert not solution.is_satisfying
        assert solution.satisfied_clauses == 1

    def test_cost_decreases_with_each_satisfied_clause(self):
        # Each satisfied clause removes one target record from T⁺ (|A| cells).
        f = example_formula()
        instance = reduce_formula(f)
        n_attributes = instance.n_attributes
        best = solve_reduction_exact(f)
        all_deleted_cost = n_attributes * instance.n_target_records
        assert best.cost == all_deleted_cost - n_attributes * f.n_clauses

    def test_reduction_decides_satisfiability_like_dpll(self):
        rng = random.Random(21)
        for _ in range(6):
            f = random_formula(4, 6, rng=rng)
            solution = solve_reduction_exact(f)
            assert solution.is_satisfying == is_satisfiable(f)

    def test_explanation_cost_consistency(self):
        f = example_formula()
        solution = solve_reduction_exact(f)
        assert solution.cost == explanation_cost(solution.instance, solution.explanation)
