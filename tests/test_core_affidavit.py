"""End-to-end tests of the Affidavit search engine (Algorithm 1)."""

import pytest

from repro.core import (
    AffidavitConfig,
    ProblemInstance,
    explain_snapshots,
    identity_configuration,
    overlap_configuration,
    trivial_explanation_cost,
)
from repro.dataio import Schema, Table
from repro.functions import default_registry


@pytest.fixture
def simple_snapshots():
    """Amounts divided by 100, unit renamed, one insertion and one deletion."""
    schema = Schema(["code", "amount", "unit"])
    source_rows = [(f"c{i:02d}", str(100 * (i + 1)), "EUR") for i in range(30)]
    target_rows = [(f"c{i:02d}", str(i + 1), "kEUR") for i in range(29)]  # c29 deleted
    target_rows.append(("zz99", "777", "kEUR"))  # inserted
    return Table(schema, source_rows), Table(schema, target_rows)


class TestExplainSnapshots:
    def test_identity_configuration_recovers_transformations(self, simple_snapshots):
        source, target = simple_snapshots
        result = explain_snapshots(source, target, config=identity_configuration())
        functions = result.explanation.functions
        assert functions["code"].is_identity
        assert functions["amount"].apply("1500") == "15"
        assert functions["unit"].apply("EUR") == "kEUR"
        assert result.explanation.core_size == 29
        assert result.explanation.n_deleted == 1
        assert result.explanation.n_inserted == 1

    def test_overlap_configuration_also_works(self, simple_snapshots):
        source, target = simple_snapshots
        result = explain_snapshots(source, target, config=overlap_configuration())
        assert result.explanation.core_size == 29
        assert result.cost < result.trivial_cost

    def test_result_is_valid_and_costed(self, simple_snapshots):
        source, target = simple_snapshots
        result = explain_snapshots(source, target)
        instance = ProblemInstance(source=source, target=target)
        assert result.explanation.is_valid(instance)
        assert result.cost <= result.trivial_cost
        assert result.trivial_cost == trivial_explanation_cost(instance)
        assert result.runtime_seconds >= 0.0
        assert result.expansions >= 1

    def test_custom_registry_is_used(self, simple_snapshots):
        source, target = simple_snapshots
        registry = default_registry(include_dates=False)
        result = explain_snapshots(source, target, registry=registry, name="custom")
        assert result.explanation.core_size == 29


class TestDeterminism:
    def test_same_seed_same_result(self, simple_snapshots):
        source, target = simple_snapshots
        first = explain_snapshots(source, target, config=identity_configuration())
        second = explain_snapshots(source, target, config=identity_configuration())
        assert first.cost == second.cost
        assert first.explanation.functions == second.explanation.functions
        assert first.explanation.alignment == second.explanation.alignment

    def test_different_seeds_still_valid(self, simple_snapshots):
        source, target = simple_snapshots
        config = identity_configuration(seed=99)
        result = explain_snapshots(source, target, config=config)
        instance = ProblemInstance(source=source, target=target)
        assert result.explanation.is_valid(instance)


class TestEdgeCases:
    def test_identical_snapshots_yield_identity_everywhere(self):
        schema = Schema(["a", "b"])
        rows = [(str(i), f"v{i % 5}") for i in range(20)]
        table = Table(schema, rows)
        result = explain_snapshots(table, Table(schema, rows))
        assert result.explanation.n_deleted == 0
        assert result.explanation.n_inserted == 0
        assert all(f.is_identity for f in result.explanation.functions.values())
        assert result.cost == 0

    def test_disjoint_snapshots_fall_back_to_trivial_like_costs(self):
        schema = Schema(["a", "b"])
        source = Table(schema, [(f"s{i}", "x") for i in range(5)])
        target = Table(schema, [(f"t{i}", "y") for i in range(5)])
        result = explain_snapshots(source, target)
        instance = ProblemInstance(source=source, target=target)
        assert result.explanation.is_valid(instance)
        assert result.cost <= trivial_explanation_cost(instance)

    def test_single_attribute_table(self):
        schema = Schema(["only"])
        source = Table(schema, [(str(i),) for i in range(10)])
        target = Table(schema, [(str(i + 1),) for i in range(10)])
        result = explain_snapshots(source, target)
        instance = ProblemInstance(source=source, target=target)
        assert result.explanation.is_valid(instance)
        # Two optimal explanations exist with cost 1: the identity (aligns 9
        # records, 1 insertion) and addition-by-one (aligns all 10 records,
        # ψ = 1).  The search must find one of them.
        assert result.cost == 1
        assert result.explanation.core_size >= 9

    def test_empty_target_snapshot(self):
        schema = Schema(["a"])
        source = Table(schema, [("1",), ("2",)])
        target = Table(schema)
        result = explain_snapshots(source, target)
        assert result.explanation.core_size == 0
        assert result.explanation.n_deleted == 2
        assert result.cost == 0

    def test_max_expansions_cap_still_returns_valid_explanation(self, simple_snapshots):
        source, target = simple_snapshots
        config = identity_configuration(max_expansions=1)
        result = explain_snapshots(source, target, config=config)
        instance = ProblemInstance(source=source, target=target)
        assert result.explanation.is_valid(instance)

    def test_result_summary_renders(self, simple_snapshots):
        source, target = simple_snapshots
        result = explain_snapshots(source, target)
        text = result.summary()
        assert "cost" in text
        assert "attribute functions" in text


class TestConfigValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AffidavitConfig(alpha=1.5)
        with pytest.raises(ValueError):
            AffidavitConfig(beta=0)
        with pytest.raises(ValueError):
            AffidavitConfig(queue_width=0)
        with pytest.raises(ValueError):
            AffidavitConfig(theta=0.0)
        with pytest.raises(ValueError):
            AffidavitConfig(confidence=1.0)
        with pytest.raises(ValueError):
            AffidavitConfig(start_strategy="nope")
        with pytest.raises(ValueError):
            AffidavitConfig(max_expansions=0)

    def test_with_overrides(self):
        config = identity_configuration().with_overrides(beta=3)
        assert config.beta == 3
        assert config.start_strategy == "identity"

    def test_named_configurations_match_the_paper(self):
        hid = identity_configuration()
        assert (hid.beta, hid.queue_width, hid.start_strategy) == (2, 5, "identity")
        hs = overlap_configuration()
        assert (hs.beta, hs.queue_width, hs.start_strategy) == (1, 1, "overlap")
        assert hs.max_block_size == 100_000
        for config in (hid, hs):
            assert config.alpha == 0.5
            assert config.theta == 0.1
            assert config.confidence == 0.95
