"""Unit tests for the function registry and example-based candidate induction."""

import pytest

from repro.functions import (
    CandidatePool,
    ConstantValue,
    Division,
    FunctionRegistry,
    IdentityMeta,
    PrefixReplacement,
    default_registry,
    induce_candidates,
    induce_from_example,
    sat_registry,
)
from repro.functions.identity import IDENTITY


class TestFunctionRegistry:
    def test_default_registry_contains_table1_families(self):
        registry = default_registry()
        for name in (
            "identity", "uppercasing", "constant", "addition", "division",
            "front_masking", "front_char_trimming", "prefixing", "prefix_replacement",
        ):
            assert name in registry

    def test_default_registry_includes_inverse_variants(self):
        registry = default_registry()
        for name in ("lowercasing", "multiplication", "suffixing",
                     "suffix_replacement", "back_masking", "back_char_trimming"):
            assert name in registry

    def test_date_extension_toggle(self):
        assert "date_conversion" in default_registry(include_dates=True)
        assert "date_conversion" not in default_registry(include_dates=False)

    def test_sat_registry_is_minimal(self):
        registry = sat_registry()
        assert set(registry.names) == {"identity", "boolean_negation"}

    def test_register_and_unregister(self):
        registry = FunctionRegistry()
        registry.register(IdentityMeta())
        assert "identity" in registry
        registry.unregister("identity")
        assert "identity" not in registry

    def test_duplicate_registration_rejected(self):
        registry = FunctionRegistry([IdentityMeta()])
        with pytest.raises(ValueError):
            registry.register(IdentityMeta())

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            FunctionRegistry().unregister("missing")

    def test_subset_preserves_order_and_rejects_unknown(self):
        registry = default_registry()
        subset = registry.subset(["division", "identity"])
        assert subset.names == ["division", "identity"]
        with pytest.raises(KeyError):
            registry.subset(["nope"])

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.unregister("identity")
        assert "identity" in registry

    def test_len_and_iteration(self):
        registry = default_registry(include_dates=False)
        assert len(registry) == len(list(registry)) == len(registry.names)


class TestInduceFromExample:
    def test_running_example_val_attribute(self):
        # Section 4.4.2: sampling T08 for Val can induce several candidates.
        registry = default_registry()
        candidates = induce_from_example(list(registry), "9800", "9.8")
        assert Division(1000) in candidates
        assert ConstantValue("9.8") in candidates

    def test_running_example_date_attribute(self):
        registry = default_registry()
        candidates = induce_from_example(list(registry), "99991231", "20180701")
        assert PrefixReplacement("9999123", "2018070") in candidates

    def test_equal_values_induce_identity(self):
        registry = default_registry()
        candidates = induce_from_example(list(registry), "IBM", "IBM")
        assert IDENTITY in candidates


class TestCandidatePool:
    def test_counts_each_candidate_once_per_example(self):
        registry = default_registry()
        pool = CandidatePool()
        # Two source values produce the same constant candidate; it must count once.
        pool.add_example(registry, ["10", "20"], "5")
        stats = pool.stats_for(ConstantValue("5"))
        assert stats is not None
        assert stats.generation_count == 1
        assert pool.examples_seen == 1

    def test_generation_counts_accumulate_over_examples(self):
        registry = default_registry()
        pool = CandidatePool()
        pool.add_example(registry, ["1000"], "1")
        pool.add_example(registry, ["2000"], "2")
        pool.add_example(registry, ["3000"], "3")
        counts = pool.generation_counts()
        assert counts[Division(1000)] == 3

    def test_filtered_by_threshold(self):
        registry = default_registry()
        pool = CandidatePool()
        pool.add_example(registry, ["1000"], "1")
        pool.add_example(registry, ["2000"], "2")
        survivors = pool.filtered(2)
        assert Division(1000) in survivors
        # constants are example-specific, generated only once each
        assert ConstantValue("1") not in survivors

    def test_examples_recorded_for_debugging(self):
        registry = default_registry()
        pool = CandidatePool()
        pool.add_example(registry, ["1000"], "1")
        stats = pool.stats_for(Division(1000))
        assert stats.examples == [("1000", "1")]


class TestInduceCandidatesHelper:
    def test_end_to_end_with_threshold(self):
        registry = default_registry()
        examples = [(["80000"], "80"), (["6540"], "6.54"), (["21000"], "21")]
        survivors = induce_candidates(registry, examples, min_generation_count=3)
        assert survivors == [Division(1000)]

    def test_threshold_one_keeps_everything(self):
        registry = default_registry()
        survivors = induce_candidates(registry, [(["5"], "50")], min_generation_count=1)
        assert len(survivors) >= 2  # multiplication and constant at least


class TestInductionMemo:
    def test_memoized_pool_matches_unmemoized_pool(self):
        from repro.functions.induction import InductionMemo

        registry = default_registry()
        examples = [(["80000", "abc"], "80"), (["80000"], "80"), (["abc"], "xabc")]
        memo = InductionMemo()
        memoized, plain = CandidatePool(), CandidatePool()
        for values, target in examples:
            memoized.add_example(registry, values, target, memo=memo)
            plain.add_example(registry, values, target)
        assert memoized.candidates == plain.candidates
        assert memoized.generation_counts() == plain.generation_counts()
        assert memo.hits > 0  # the repeated value pair was served from the memo

    def test_memo_clears_when_full(self):
        from repro.functions.induction import InductionMemo

        memo = InductionMemo(max_entries=2)
        registry = default_registry()
        for value in ("1", "2", "3"):
            memo.induced(registry, value, "9")
        assert len(memo) <= 2
