"""Unit tests for the overlap-score matching used by the Hs start state."""

import pytest

from repro.dataio import Schema, Table
from repro.linking import analyse_overlap
from repro.datagen.running_example import source_table, target_table


@pytest.fixture
def snapshots():
    schema = Schema(["key", "colour", "size"])
    source = Table(schema, [
        ("k1", "red", "S"),
        ("k2", "blue", "M"),
        ("k3", "green", "L"),
    ])
    # keys are reassigned; colour and size are unchanged
    target = Table(schema, [
        ("x9", "red", "S"),
        ("x8", "blue", "M"),
        ("x7", "green", "L"),
    ])
    return source, target


class TestAnalyseOverlap:
    def test_best_matches_found_via_unchanged_attributes(self, snapshots):
        source, target = snapshots
        analysis = analyse_overlap(source, target)
        matches = {m.source_id: m.target_id for m in analysis.matches}
        assert matches == {0: 0, 1: 1, 2: 2}
        assert all(m.score == 2 for m in analysis.matches)

    def test_identity_attributes_exclude_reassigned_key(self, snapshots):
        source, target = snapshots
        analysis = analyse_overlap(source, target)
        assert set(analysis.identity_attributes) <= {"colour", "size"}
        assert analysis.modal_score == 2
        assert len(analysis.identity_attributes) == 2

    def test_attribute_frequencies(self, snapshots):
        source, target = snapshots
        analysis = analyse_overlap(source, target)
        assert analysis.attribute_frequencies["colour"] == 3
        assert analysis.attribute_frequencies["size"] == 3
        assert "key" not in analysis.attribute_frequencies

    def test_max_block_size_filters_frequent_values(self):
        schema = Schema(["constant", "id"])
        source = Table(schema, [("x", str(i)) for i in range(20)])
        target = Table(schema, [("x", str(i)) for i in range(20)])
        # With a tiny cap, the constant column (20×20 pairs) is skipped and
        # only the id column contributes scores.
        analysis = analyse_overlap(source, target, max_block_size=50)
        assert all(m.score == 1 for m in analysis.matches)
        assert analysis.identity_attributes == ("id",)

    def test_missing_values_are_ignored(self):
        schema = Schema(["a", "b"])
        source = Table(schema, [("", "1"), ("", "2")])
        target = Table(schema, [("", "1"), ("", "2")])
        analysis = analyse_overlap(source, target)
        assert all("a" not in m.overlapping_attributes for m in analysis.matches)

    def test_no_overlap_yields_empty_analysis(self):
        schema = Schema(["a"])
        source = Table(schema, [("x",)])
        target = Table(schema, [("y",)])
        analysis = analyse_overlap(source, target)
        assert analysis.matches == []
        assert analysis.identity_attributes == ()
        assert analysis.modal_score == 0


class TestRunningExampleOverlap:
    def test_unchanged_attributes_are_preferred(self):
        # On I₁ the attributes Type and Org are unchanged; Date is unchanged
        # for most records.  The reassigned ID2 must not dominate.
        analysis = analyse_overlap(source_table(), target_table())
        assert analysis.identity_attributes
        assert set(analysis.identity_attributes) <= {"Type", "Org", "Date", "ID2"}
        assert "Val" not in analysis.identity_attributes
        assert "Unit" not in analysis.identity_attributes
