"""Tests of the metamorphic oracles (:mod:`repro.fuzz.oracles`).

Healthy inputs must sail through every oracle silently; inputs that violate
the engine's documented input contract (e.g. raw cells colliding with the
reserved ``NOT_APPLICABLE`` sentinel) are *out of domain* and must be
skipped, not reported.  Actual detection of a broken engine is exercised in
``test_fuzz_runner.py`` against a deliberately corrupted shim.
"""

from __future__ import annotations

import json

import pytest

from repro.core import NOT_APPLICABLE
from repro.dataio import read_csv_text
from repro.fuzz import (
    PAYLOAD_ORACLES,
    SNAPSHOT_ORACLES,
    ServiceOracle,
    SnapshotPair,
    bounds_sound,
    budget_respected,
    codec_roundtrip,
    engines_agree,
    payload_parses,
    serialization_roundtrip,
)


@pytest.fixture
def healthy_pair() -> SnapshotPair:
    return SnapshotPair(
        source=read_csv_text(
            "Name,Val,Mod\nSmith,1000,air\nMiller,2000,air\n"
            "Johnson,1000,sea\nBrown,3000,sea\n"
        ),
        target=read_csv_text(
            "Name,Val,Mod\nSMITH,1,air\nMILLER,2,air\nJOHNSON,1,sea\n"
        ),
    )


@pytest.fixture
def messy_pair() -> SnapshotPair:
    # Missing tokens, unicode, duplicates — in-domain but awkward.
    return SnapshotPair(
        source=read_csv_text(
            "Id,Note\n1,Straße\n2,\n3,NULL\n3,NULL\n4,ﬃ\n"
        ),
        target=read_csv_text(
            "Id,Note\n1,STRASSE\n5,ΚΌΣΜΕ\n3,NULL\n"
        ),
    )


class TestSnapshotOracles:
    @pytest.mark.parametrize("oracle", sorted(SNAPSHOT_ORACLES))
    def test_healthy_pair_passes(self, oracle, healthy_pair):
        SNAPSHOT_ORACLES[oracle](healthy_pair, seed=0)

    @pytest.mark.parametrize("oracle", sorted(SNAPSHOT_ORACLES))
    def test_messy_pair_passes(self, oracle, messy_pair):
        SNAPSHOT_ORACLES[oracle](messy_pair, seed=1)

    @pytest.mark.parametrize(
        "oracle",
        [engines_agree, bounds_sound, codec_roundtrip,
         serialization_roundtrip, budget_respected],
    )
    def test_sentinel_collision_is_out_of_domain_not_a_finding(self, oracle):
        # Raw cells equal to the engines' in-band sentinel are rejected at
        # the ProblemInstance boundary; the oracles must treat such pairs
        # as out-of-domain and skip them silently.
        pair = SnapshotPair(
            source=read_csv_text(f"K\nplain\n{NOT_APPLICABLE}\n"),
            target=read_csv_text("K\nplain\n"),
        )
        oracle(pair, seed=0)

    def test_engines_agree_accepts_engine_subset(self, healthy_pair):
        engines_agree(healthy_pair, seed=0, engines=("rowwise", "parallel"))

    def test_single_column_single_row_pair(self):
        pair = SnapshotPair(
            source=read_csv_text("K\nonly\n"),
            target=read_csv_text("K\nONLY\n"),
        )
        for oracle in SNAPSHOT_ORACLES.values():
            oracle(pair, seed=0)


class TestPayloadOracles:
    def test_valid_request_payload_passes(self):
        payload = json.dumps({
            "schema_version": "affidavit.request/v1",
            "source_csv": "A,B\n1,x\n2,y\n",
            "target_csv": "A,B\n1,X\n3,z\n",
            "config": "hid",
        })
        for oracle in PAYLOAD_ORACLES.values():
            oracle(payload)

    @pytest.mark.parametrize("payload", [
        "",                                  # empty body
        "not json",                          # unparseable
        "[1, 2, 3]",                         # wrong JSON shape
        '{"schema_version": "affidavit.request/v9"}',  # unknown version
        '{"schema_version": "affidavit.request/v1"}',  # missing snapshots
        '{"source_csv": "A\\n1\\n", "target_csv": "\\x00"}',
    ])
    def test_malformed_payloads_are_rejected_gracefully(self, payload):
        # The parser may reject them (expected) but must never crash with
        # anything other than a validation error — that would be a finding.
        payload_parses(payload)


class TestServiceOracle:
    def test_live_service_answers_sanely(self):
        service = ServiceOracle()
        try:
            valid = json.dumps({
                "schema_version": "affidavit.request/v1",
                "source_csv": "A\n1\n",
                "target_csv": "A\n2\n",
                "config": "hid",
            })
            service.check(valid)
            service.check("definitely { not json")
            service.check("")
        finally:
            service.close()
