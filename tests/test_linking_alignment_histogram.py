"""Unit tests for block-respecting alignments, greedy maps and histogram overlap."""

import random
from collections import Counter

import pytest

from repro.core import ProblemInstance, SearchState, build_blocking
from repro.dataio import Schema, Table
from repro.functions import ConstantValue, Division, IDENTITY
from repro.linking import (
    alignment_accuracy,
    block_overlap,
    greedy_alignment_from_values,
    histogram_overlap,
    induce_greedy_mapping,
    sample_random_alignment,
    transformed_histogram,
    value_histogram,
)


@pytest.fixture
def instance():
    schema = Schema(["group", "value"])
    source = Table(schema, [("A", "1"), ("A", "2"), ("B", "3"), ("B", "4"), ("C", "5")])
    target = Table(schema, [("A", "x1"), ("A", "x2"), ("B", "x3"), ("D", "x9")])
    return ProblemInstance(source=source, target=target)


@pytest.fixture
def blocking(instance):
    state = SearchState.empty(instance.schema).extend("group", IDENTITY)
    return build_blocking(instance, state)


class TestRandomAlignment:
    def test_respects_blocks(self, instance, blocking):
        rng = random.Random(0)
        pairs = sample_random_alignment(blocking, rng)
        source_groups = instance.source.column_view("group")
        target_groups = instance.target.column_view("group")
        for source_id, target_id in pairs:
            assert source_groups[source_id] == target_groups[target_id]

    def test_pairs_min_of_each_block(self, instance, blocking):
        pairs = sample_random_alignment(blocking, random.Random(0))
        # block A: min(2,2)=2, block B: min(2,1)=1, C and D have one side only.
        assert len(pairs) == 3

    def test_no_duplicate_records_within_alignment(self, blocking):
        pairs = sample_random_alignment(blocking, random.Random(3))
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)

    def test_deterministic_for_seed(self, blocking):
        assert sample_random_alignment(blocking, random.Random(7)) == sample_random_alignment(
            blocking, random.Random(7)
        )


class TestGreedyMapping:
    def test_maps_to_most_frequent_co_occurrence(self):
        schema = Schema(["v"])
        source = Table(schema, [("a",), ("a",), ("a",), ("b",)])
        target = Table(schema, [("x",), ("x",), ("y",), ("z",)])
        alignment = [(0, 0), (1, 1), (2, 2), (3, 3)]
        mapping = induce_greedy_mapping(alignment, source, target, "v")
        assert mapping.apply("a") == "x"
        assert mapping.apply("b") == "z"

    def test_tie_break_is_lexicographic(self):
        schema = Schema(["v"])
        source = Table(schema, [("a",), ("a",)])
        target = Table(schema, [("y",), ("x",)])
        mapping = induce_greedy_mapping([(0, 0), (1, 1)], source, target, "v")
        assert mapping.apply("a") == "x"

    def test_empty_alignment_gives_empty_mapping(self):
        schema = Schema(["v"])
        table = Table(schema, [("a",)])
        mapping = induce_greedy_mapping([], table, table, "v")
        assert mapping.size == 0


class TestKeyedAlignment:
    def test_greedy_alignment_from_values(self):
        schema = Schema(["key", "payload"])
        source = Table(schema, [("k1", "a"), ("k2", "b"), ("k3", "c")])
        target = Table(schema, [("k3", "c2"), ("k1", "a2")])
        pairs = greedy_alignment_from_values(source, target, ["key"])
        assert dict(pairs) == {0: 1, 2: 0}

    def test_duplicate_keys_matched_at_most_once(self):
        schema = Schema(["key"])
        source = Table(schema, [("k",), ("k",), ("k",)])
        target = Table(schema, [("k",), ("k",)])
        pairs = greedy_alignment_from_values(source, target, ["key"])
        assert len(pairs) == 2
        assert len({t for _, t in pairs}) == 2

    def test_alignment_accuracy(self):
        reference = [(0, 0), (1, 1), (2, 2), (3, 3)]
        predicted = [(0, 0), (1, 1), (2, 9)]
        assert alignment_accuracy(predicted, reference) == 0.5
        assert alignment_accuracy([], []) == 1.0


class TestHistograms:
    def test_value_histogram(self):
        assert value_histogram(["a", "b", "a"]) == Counter({"a": 2, "b": 1})

    def test_histogram_overlap(self):
        left = Counter({"a": 2, "b": 1})
        right = Counter({"a": 1, "c": 5})
        assert histogram_overlap(left, right) == 1
        assert histogram_overlap(right, left) == 1

    def test_overlap_of_disjoint_histograms_is_zero(self):
        assert histogram_overlap(Counter({"a": 1}), Counter({"b": 1})) == 0

    def test_transformed_histogram_skips_inapplicable(self):
        histogram = transformed_histogram(Division(1000), ["6540", "x", "9800"])
        assert histogram == Counter({"6.54": 1, "9.8": 1})

    def test_block_overlap_running_example_figure(self):
        # Section 4.4.3: on block κᵢ the division has overlap 2, the constant 1.
        source_values = ["6540", "9800", "0"]
        target_values = ["9.8", "6.54"]
        assert block_overlap(Division(1000), source_values, target_values) == 2
        assert block_overlap(ConstantValue("9.8"), source_values, target_values) == 1
