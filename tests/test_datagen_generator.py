"""Unit tests for problem-instance generation (Section 5.1 protocol)."""

import random

import pytest

from repro.dataio import Schema, Table
from repro.datagen import (
    ARTIFICIAL_KEY_ATTRIBUTE,
    generate_problem_instance,
    key_permutations,
    noise_set_size,
    partition_records,
    prepare_dataset,
    removable_attributes,
)
from repro.datagen.datasets import load_dataset
from repro.functions import ValueMapping


class TestPreparation:
    def test_high_distinct_attributes_removed(self):
        schema = Schema(["unique_id", "category"])
        table = Table(schema, [(str(i), f"c{i % 3}") for i in range(100)])
        assert removable_attributes(table) == ["unique_id"]
        prepared = prepare_dataset(table)
        assert list(prepared.schema) == ["category"]

    def test_empty_attributes_removed(self):
        schema = Schema(["empty", "kept"])
        table = Table(schema, [("", f"v{i % 4}") for i in range(50)])
        assert "empty" in removable_attributes(table)

    def test_error_when_everything_would_be_removed(self):
        schema = Schema(["unique"])
        table = Table(schema, [(str(i),) for i in range(10)])
        with pytest.raises(ValueError):
            prepare_dataset(table)

    def test_nothing_removed_returns_same_table(self):
        schema = Schema(["category"])
        table = Table(schema, [(f"c{i % 3}",) for i in range(30)])
        assert prepare_dataset(table) is table


class TestPartitioning:
    def test_noise_set_size_formula(self):
        # η·N / (1 + η): for N = 130 and η = 0.3 → 30 records per noise set.
        assert noise_set_size(130, 0.3) == 30
        assert noise_set_size(100, 0.0) == 0

    def test_noise_fraction_of_snapshot(self):
        n_records, eta = 1000, 0.5
        noise = noise_set_size(n_records, eta)
        snapshot_size = n_records - noise
        assert noise / snapshot_size == pytest.approx(eta, abs=0.01)

    def test_partition_is_disjoint_and_complete(self):
        core, source_noise, target_noise = partition_records(100, 0.4, random.Random(0))
        all_indices = core + source_noise + target_noise
        assert sorted(all_indices) == list(range(100))
        assert not (set(core) & set(source_noise))
        assert not (set(source_noise) & set(target_noise))

    def test_at_least_one_core_record(self):
        core, _, _ = partition_records(3, 0.9, random.Random(0))
        assert len(core) >= 1

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            noise_set_size(100, 1.0)


class TestKeyPermutations:
    def test_two_different_permutations_of_same_values(self):
        first, second = key_permutations(50, random.Random(1))
        assert sorted(first) == sorted(second)
        assert first != second
        assert len(set(first)) == 50

    def test_zero_padding(self):
        first, _ = key_permutations(5, random.Random(0))
        assert all(len(value) == 4 for value in first)

    def test_singleton(self):
        first, second = key_permutations(1, random.Random(0))
        assert first == second == ["0000"]


class TestGenerateProblemInstance:
    @pytest.fixture(scope="class")
    def generated(self):
        table = load_dataset("iris", seed=3)
        return generate_problem_instance(table, eta=0.3, tau=0.3, seed=5, name="iris-gen")

    def test_reference_explanation_is_valid(self, generated):
        generated.reference.validate(generated.instance)

    def test_snapshot_sizes_follow_protocol(self, generated):
        # 150 records, η = 0.3 → noise ≈ 35 per side, snapshots of ≈ 115.
        noise = noise_set_size(150, 0.3)
        assert generated.n_source_noise == noise
        assert generated.n_target_noise == noise
        assert generated.instance.n_source_records == 150 - noise
        assert generated.instance.n_target_records == 150 - noise

    def test_artificial_key_attribute_added(self, generated):
        assert ARTIFICIAL_KEY_ATTRIBUTE in generated.instance.schema
        assert generated.key_attribute == ARTIFICIAL_KEY_ATTRIBUTE
        key_function = generated.reference.functions[ARTIFICIAL_KEY_ATTRIBUTE]
        assert isinstance(key_function, ValueMapping)

    def test_key_alignment_is_wrong_when_used_for_blocking(self, generated):
        # Equal key values must not correspond to the reference alignment for
        # (at least most of) the records, otherwise the key would be trivial.
        instance = generated.instance
        key = ARTIFICIAL_KEY_ATTRIBUTE
        source_keys = {instance.source.cell(s, key): s for s in range(instance.n_source_records)}
        agreements = 0
        for source_id, target_id in generated.reference.alignment.items():
            target_key = instance.target.cell(target_id, key)
            if source_keys.get(target_key) == source_id:
                agreements += 1
        assert agreements < generated.core_size / 2

    def test_transformed_attribute_listing(self, generated):
        for attribute in generated.transformed_attributes:
            assert not generated.transformations[attribute].is_identity

    def test_describe_mentions_core_and_noise(self, generated):
        text = generated.describe()
        assert "core=" in text and "eta=0.3" in text

    def test_tau_zero_means_core_records_unchanged(self):
        table = load_dataset("iris", seed=3)
        generated = generate_problem_instance(table, eta=0.2, tau=0.0, seed=7)
        for attribute, function in generated.transformations.items():
            if attribute != generated.key_attribute:
                assert function.is_identity

    def test_seed_reproducibility(self):
        table = load_dataset("balance", seed=2)
        first = generate_problem_instance(table, eta=0.3, tau=0.5, seed=13)
        second = generate_problem_instance(table, eta=0.3, tau=0.5, seed=13)
        assert first.instance.source == second.instance.source
        assert first.instance.target == second.instance.target
        assert first.reference.functions == second.reference.functions

    def test_different_seeds_differ(self):
        table = load_dataset("balance", seed=2)
        first = generate_problem_instance(table, eta=0.3, tau=0.5, seed=13)
        second = generate_problem_instance(table, eta=0.3, tau=0.5, seed=14)
        assert (
            first.instance.source != second.instance.source
            or first.reference.functions != second.reference.functions
        )

    def test_without_key_attribute(self):
        table = load_dataset("iris", seed=3)
        generated = generate_problem_instance(
            table, eta=0.3, tau=0.3, seed=5, add_key=False
        )
        assert ARTIFICIAL_KEY_ATTRIBUTE not in generated.instance.schema
        generated.reference.validate(generated.instance)
