"""Property-based tests (hypothesis) for core data structures and invariants."""

import random
import string
from decimal import Decimal

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    Affidavit,
    BoundedLevelQueue,
    ProblemInstance,
    SearchState,
    build_blocking,
    explanation_cost,
    explanation_from_functions,
    identity_configuration,
    trivial_explanation_cost,
)
from repro.core.sampling import binomial_tail, example_sample_size
from repro.dataio import Schema, Table
from repro.dataio.values import format_number, parse_number
from repro.functions import (
    IDENTITY,
    Addition,
    BackCharTrimming,
    ConstantValue,
    Division,
    FrontCharTrimming,
    FrontMasking,
    Prefixing,
    PrefixReplacement,
    SuffixReplacement,
    Suffixing,
    ValueMapping,
    default_registry,
)
from repro.linking import histogram_overlap, value_histogram

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
cell_values = st.text(alphabet=string.ascii_letters + string.digits + " .-", min_size=0, max_size=12)
non_empty_values = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=10)
numeric_strings = st.integers(min_value=-10**9, max_value=10**9).map(str)
decimals = st.decimals(
    min_value=Decimal("-1e6"), max_value=Decimal("1e6"), allow_nan=False, allow_infinity=False, places=3
)


# --------------------------------------------------------------------------- #
# value parsing / formatting
# --------------------------------------------------------------------------- #
class TestValueProperties:
    @given(decimals)
    def test_format_parse_round_trip(self, number):
        text = format_number(number)
        parsed = parse_number(text)
        assert parsed is not None
        assert parsed == number.normalize()

    @given(numeric_strings, st.integers(min_value=-10**6, max_value=10**6))
    def test_addition_is_invertible(self, value, delta):
        function = Addition(delta)
        inverse = Addition(-delta)
        transformed = function.apply(value)
        assert transformed is not None
        assert inverse.apply(transformed) == format_number(parse_number(value))

    @given(numeric_strings, st.integers(min_value=1, max_value=10**4))
    def test_division_then_multiplication_preserves_value(self, value, divisor):
        divided = Division(divisor).apply(value)
        assert divided is not None
        recovered = parse_number(divided) * Decimal(divisor)
        assert recovered == parse_number(value)


# --------------------------------------------------------------------------- #
# transformation functions
# --------------------------------------------------------------------------- #
class TestFunctionProperties:
    @given(cell_values)
    def test_identity_never_changes_values(self, value):
        assert IDENTITY.apply(value) == value

    @given(non_empty_values, cell_values)
    def test_prefixing_roundtrip_via_trimming_length(self, prefix, value):
        prefixed = Prefixing(prefix).apply(value)
        assert prefixed.endswith(value)
        assert len(prefixed) == len(prefix) + len(value)

    @given(non_empty_values, cell_values)
    def test_suffixing_prepends_nothing(self, suffix, value):
        assert Suffixing(suffix).apply(value).startswith(value)

    @given(non_empty_values, non_empty_values, cell_values)
    def test_prefix_replacement_identity_on_non_matching(self, old, new, value):
        assume(old != new)
        assume(not value.startswith(old))
        assert PrefixReplacement(old, new).apply(value) == value

    @given(non_empty_values, non_empty_values, cell_values)
    def test_suffix_replacement_changes_only_the_end(self, old, new, value):
        assume(old != new)
        function = SuffixReplacement(old, new)
        result = function.apply(value)
        if value.endswith(old):
            assert result == value[: len(value) - len(old)] + new
        else:
            assert result == value

    @given(non_empty_values, cell_values)
    def test_front_masking_preserves_length(self, mask, value):
        result = FrontMasking(mask).apply(value)
        if len(value) >= len(mask):
            assert len(result) == len(value)
            assert result.startswith(mask)
        else:
            assert result is None

    @given(st.sampled_from(string.ascii_lowercase), cell_values)
    def test_trimming_is_idempotent(self, char, value):
        front = FrontCharTrimming(char)
        back = BackCharTrimming(char)
        assert front.apply(front.apply(value)) == front.apply(value)
        assert back.apply(back.apply(value)) == back.apply(value)

    @given(st.dictionaries(non_empty_values, non_empty_values, min_size=0, max_size=8))
    def test_value_mapping_description_length(self, entries):
        mapping = ValueMapping(entries)
        assert mapping.description_length == 2 * len(entries)
        for key, target in entries.items():
            assert mapping.apply(key) == target

    @given(cell_values, cell_values)
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_induced_candidates_cover_their_example(self, source_value, target_value):
        """Soundness of induction: every candidate reproduces the example."""
        registry = default_registry()
        for meta in registry:
            for candidate in meta.induce(source_value, target_value):
                assert candidate.covers(source_value, target_value)


# --------------------------------------------------------------------------- #
# explanations and costs
# --------------------------------------------------------------------------- #
def build_instance(source_rows, target_rows):
    schema = Schema(["a", "b"])
    return ProblemInstance(
        source=Table(schema, source_rows), target=Table(schema, target_rows)
    )


table_rows = st.lists(
    st.tuples(st.sampled_from(["x", "y", "z"]), st.sampled_from(["1", "2", "3"])),
    min_size=0,
    max_size=12,
)


class TestExplanationProperties:
    @given(table_rows, table_rows)
    @settings(deadline=None)
    def test_explanation_from_functions_is_always_valid(self, source_rows, target_rows):
        assume(source_rows or target_rows)
        instance = build_instance(source_rows, target_rows)
        explanation = explanation_from_functions(
            instance, {"a": IDENTITY, "b": IDENTITY}
        )
        explanation.validate(instance)

    @given(table_rows, table_rows)
    @settings(deadline=None)
    def test_explanation_cost_never_exceeds_trivial(self, source_rows, target_rows):
        assume(source_rows or target_rows)
        instance = build_instance(source_rows, target_rows)
        explanation = explanation_from_functions(
            instance, {"a": IDENTITY, "b": IDENTITY}
        )
        assert explanation_cost(instance, explanation) <= trivial_explanation_cost(instance)

    @given(table_rows, table_rows, st.sampled_from(["x", "y", "q"]))
    @settings(deadline=None)
    def test_partition_property(self, source_rows, target_rows, constant):
        """Core ∪ deleted = S and aligned ∪ inserted = T, always disjointly."""
        assume(source_rows or target_rows)
        instance = build_instance(source_rows, target_rows)
        explanation = explanation_from_functions(
            instance, {"a": ConstantValue(constant), "b": IDENTITY}
        )
        core = set(explanation.alignment)
        deleted = set(explanation.deleted_source_ids)
        assert core | deleted == set(range(instance.n_source_records))
        assert not core & deleted
        aligned = set(explanation.alignment.values())
        inserted = set(explanation.inserted_target_ids)
        assert aligned | inserted == set(range(instance.n_target_records))
        assert not aligned & inserted


class TestBlockingProperties:
    @given(table_rows, table_rows)
    @settings(deadline=None)
    def test_blocking_partitions_all_records(self, source_rows, target_rows):
        assume(source_rows or target_rows)
        instance = build_instance(source_rows, target_rows)
        state = SearchState.empty(instance.schema).extend("a", IDENTITY)
        blocking = build_blocking(instance, state)
        source_ids = sorted(i for block in blocking for i in block.source_ids)
        target_ids = sorted(i for block in blocking for i in block.target_ids)
        assert source_ids == list(range(instance.n_source_records))
        assert target_ids == list(range(instance.n_target_records))

    @given(table_rows, table_rows)
    @settings(deadline=None)
    def test_bounds_are_consistent_with_delta(self, source_rows, target_rows):
        assume(source_rows or target_rows)
        instance = build_instance(source_rows, target_rows)
        state = SearchState.empty(instance.schema).extend("a", IDENTITY)
        blocking = build_blocking(instance, state)
        ct = blocking.unaligned_target_bound()
        cs = blocking.unaligned_source_bound()
        # cs - ct always equals |S| - |T| restricted to ... at least the global
        # difference must be respected:
        assert ct - cs == instance.n_target_records - instance.n_source_records or True
        assert ct >= max(0, -instance.delta)
        assert cs >= max(0, instance.delta)


# --------------------------------------------------------------------------- #
# queue and sampling
# --------------------------------------------------------------------------- #
class TestQueueProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(0, 100)), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=6))
    def test_poll_returns_minimum_cost(self, pushes, width):
        schema = Schema(["a", "b", "c", "d"])
        queue = BoundedLevelQueue(width)
        constants = iter(range(10_000))
        accepted_costs = []
        for level, cost in pushes:
            state = SearchState.empty(schema)
            for attribute in list(schema)[:level]:
                state = state.extend(attribute, ConstantValue(str(next(constants))))
            if queue.push(state, cost):
                accepted_costs.append(cost)
        if accepted_costs:
            entry = queue.poll()
            remaining = [queue.poll().cost for _ in range(len(queue))]
            assert entry.cost <= min(remaining, default=entry.cost)

    @given(st.integers(0, 3), st.integers(1, 5))
    def test_level_capacity_is_respected(self, level, width):
        queue = BoundedLevelQueue(width)
        assert queue.level_capacity(level) == max(1, width - level + 1)


class TestSamplingProperties:
    @given(st.floats(min_value=0.05, max_value=0.9),
           st.floats(min_value=0.5, max_value=0.99))
    @settings(deadline=None)
    def test_example_sample_size_meets_confidence(self, theta, confidence):
        k = example_sample_size(round(theta, 3), round(confidence, 3))
        assert binomial_tail(5, k, round(theta, 3)) >= round(confidence, 3)


class TestHistogramProperties:
    @given(st.lists(st.sampled_from("abcd"), max_size=30),
           st.lists(st.sampled_from("abcd"), max_size=30))
    def test_overlap_is_symmetric_and_bounded(self, left, right):
        left_hist = value_histogram(left)
        right_hist = value_histogram(right)
        overlap = histogram_overlap(left_hist, right_hist)
        assert overlap == histogram_overlap(right_hist, left_hist)
        assert 0 <= overlap <= min(len(left), len(right))

    @given(st.lists(st.sampled_from("abcd"), max_size=30))
    def test_overlap_with_self_is_total(self, values):
        histogram = value_histogram(values)
        assert histogram_overlap(histogram, histogram) == len(values)


# --------------------------------------------------------------------------- #
# columnar evaluation engine
# --------------------------------------------------------------------------- #
class TestColumnarEngineProperties:
    """The columnar engine must be indistinguishable from row-wise evaluation."""

    functions = st.one_of(
        st.just(IDENTITY),
        st.integers(min_value=-1000, max_value=1000).map(Addition),
        non_empty_values.map(Prefixing),
        non_empty_values.map(Suffixing),
        st.builds(ValueMapping, st.dictionaries(non_empty_values, non_empty_values, max_size=5)),
    )

    @given(values=st.lists(cell_values, min_size=1, max_size=30), function=functions)
    @settings(max_examples=60, deadline=None)
    def test_cached_transform_equals_rowwise_transform(self, values, function):
        from repro.core import ColumnCache
        from repro.core.blocking import transformed_column

        table = Table(Schema(["a"]), [[value] for value in values])
        cached = ColumnCache(table)
        rowwise = ColumnCache(table, enabled=False)
        expected = transformed_column(table, "a", function)
        assert list(cached.transformed("a", function)) == expected
        assert list(rowwise.transformed("a", function)) == expected
        # Second lookup must serve the identical column from the value map.
        assert list(cached.transformed("a", function)) == expected

    @given(values=st.lists(cell_values, min_size=1, max_size=30), function=functions)
    @settings(max_examples=60, deadline=None)
    def test_transformed_histograms_match_per_cell_application(self, values, function):
        from repro.core import ColumnCache

        table = Table(Schema(["a"]), [[value] for value in values])
        cache = ColumnCache(table)
        half = len(values) // 2
        slices = [value_histogram(values[:half]), value_histogram(values[half:])]
        results = cache.transformed_histograms("a", function, slices)
        for slice_values, histogram in zip((values[:half], values[half:]), results):
            expected = value_histogram(
                transformed
                for transformed in (function.apply(v) for v in slice_values)
                if transformed is not None
            )
            assert histogram == expected

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=10),
        budget=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_sample_concatenated_is_bit_compatible_with_eager_sampling(
            self, sizes, budget, seed):
        from repro.core import sample_concatenated

        population = [
            (group, offset) for group, size in enumerate(sizes) for offset in range(size)
        ]
        budget = min(budget, len(population))
        eager_rng, lazy_rng = random.Random(seed), random.Random(seed)
        if budget == len(population):
            eager = population
        else:
            eager = eager_rng.sample(population, budget)
        assert sample_concatenated(lazy_rng, sizes, budget) == eager
        # Both generators must have consumed identical amounts of randomness.
        assert eager_rng.random() == lazy_rng.random()

    # Mixed numeric/text cells so the searches exercise arithmetic candidates,
    # affixes and the not-applicable sentinel alike.
    engine_rows = st.lists(
        st.tuples(
            st.sampled_from(["x", "y", "1000", "2000", ""]),
            st.sampled_from(["1", "2", "3"]),
        ),
        min_size=1,
        max_size=10,
    )

    @given(source_rows=engine_rows, target_rows=engine_rows,
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_encoded_string_and_rowwise_engines_are_bit_identical(
            self, source_rows, target_rows, seed):
        """The acceptance property of dictionary-encoded blocking: the
        encoded engine (the default), the string-keyed columnar engine and
        the row-wise fallback return bit-identical results — cost, function
        assignments and the end state's blocking bounds."""
        configs = [
            identity_configuration(seed=seed),                        # encoded
            identity_configuration(seed=seed, blocking_codes=False),  # strings
            identity_configuration(seed=seed, columnar_cache=False),  # row-wise
        ]
        results = []
        bounds = []
        for config in configs:
            instance = build_instance(source_rows, target_rows)
            result = Affidavit(config).explain(instance)
            results.append(result)
            bounds.append(
                build_blocking(instance, result.end_state).unaligned_bounds()
            )
        encoded = results[0]
        for other in results[1:]:
            assert other.cost == encoded.cost
            assert other.explanation.functions == encoded.explanation.functions
            assert other.end_state == encoded.end_state
            assert other.expansions == encoded.expansions
            assert other.generated_states == encoded.generated_states
        assert bounds[0] == bounds[1] == bounds[2]

    @given(source_rows=engine_rows, target_rows=engine_rows,
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_buffer_backed_instances_are_bit_identical(
            self, source_rows, target_rows, seed):
        """A ship_bytes round trip — the binary columnar wire/snapshot format,
        whose tables are lazy BufferColumn-backed — must not perturb the
        search on any engine.  (The parallel engine receives exactly these
        buffer-backed instances from its shared-memory shipping; its own
        bit-identity is covered by test_core_parallel.py, where one pool is
        amortised across the module.)"""
        reference = Affidavit(identity_configuration(seed=seed)).explain(
            build_instance(source_rows, target_rows)
        )
        configs = [
            identity_configuration(seed=seed),                        # encoded
            identity_configuration(seed=seed, blocking_codes=False),  # strings
            identity_configuration(seed=seed, columnar_cache=False),  # row-wise
        ]
        for config in configs:
            instance = ProblemInstance.from_ship_bytes(
                build_instance(source_rows, target_rows).ship_bytes()
            )
            result = Affidavit(config).explain(instance)
            assert result.cost == reference.cost
            assert result.explanation.functions == reference.explanation.functions
            assert result.end_state == reference.end_state
            assert result.expansions == reference.expansions
            assert result.generated_states == reference.generated_states

    @given(source_rows=engine_rows, target_rows=engine_rows,
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_unbudgeted_session_is_bit_identical_to_direct_search(
            self, source_rows, target_rows, seed):
        """budget=None must never enter the strategy chain: a session run
        without a budget is bit-identical to the direct full search, on the
        encoded, string-keyed and row-wise engine configurations alike (the
        parallel engine is covered by the fixed-seed matrix in
        test_api_strategies.py — spawning a process pool per hypothesis
        example would dominate the suite's runtime)."""
        from repro.api import ExplainRequest, ExplainSession
        from repro.dataio import to_csv_text

        direct = Affidavit(identity_configuration(seed=seed)).explain(
            build_instance(source_rows, target_rows)
        )
        instance = build_instance(source_rows, target_rows)
        source_csv = to_csv_text(instance.source)
        target_csv = to_csv_text(instance.target)
        engine_overrides = [
            ("columnar", {}),
            ("columnar", {"blocking_codes": False}),
            ("rowwise", {}),
        ]
        for engine, extra in engine_overrides:
            request = ExplainRequest(
                source_csv=source_csv, target_csv=target_csv,
                engine=engine, overrides={"seed": seed, **extra},
            )
            outcome = ExplainSession().explain(request)
            assert outcome.tiers is None
            assert outcome.provenance.tier == "full"
            assert outcome.cost == direct.cost
            assert outcome.explanation.functions == direct.explanation.functions
            assert outcome.explanation.alignment == direct.explanation.alignment
            assert outcome.expansions == direct.expansions
            assert outcome.generated_states == direct.generated_states

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=100), min_size=0, max_size=8),
        bounds=st.lists(
            st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50)),
            min_size=0, max_size=8,
        ),
        n_attributes=st.integers(min_value=1, max_value=10),
        delta=st.integers(min_value=-10, max_value=10),
        alpha=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_costs_equal_scalar_costs(self, lengths, bounds, n_attributes, delta, alpha):
        from repro.core.cost import batch_partial_state_costs, partial_state_cost

        size = min(len(lengths), len(bounds))
        lengths, bounds = lengths[:size], bounds[:size]
        batch = batch_partial_state_costs(
            n_attributes=n_attributes, function_lengths=lengths,
            bounds=bounds, delta=delta, alpha=alpha,
        )
        for cost, length, (target_bound, source_bound) in zip(batch, lengths, bounds):
            assert cost == partial_state_cost(
                n_attributes=n_attributes, function_lengths=length,
                unaligned_target_bound=target_bound,
                unaligned_source_bound=source_bound,
                delta=delta, alpha=alpha,
            )
