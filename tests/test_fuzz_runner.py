"""Tests of the fuzzing loop (:mod:`repro.fuzz.runner`).

Three layers:

* the committed regression corpus under ``tests/fuzz_corpus/`` replays
  clean — every past finding stays fixed and every seed stays green;
* a short, seeded coverage-guided run on a healthy build reports zero
  findings;
* against a *deliberately broken* engine shim (the codes-blocking path
  returns a corrupted dictionary code array), the harness detects the
  divergence, the minimizer shrinks the failing pair to <= 10 rows, and a
  replayable corpus entry lands in the findings directory.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import ColumnCache
from repro.fuzz import (
    FINDINGS_DIR,
    FuzzConfig,
    FuzzRunner,
    OracleFailure,
    builtin_seed_entries,
    engines_agree,
    load_entry,
    minimize_pair,
    replay_corpus,
    replay_entry,
)

COMMITTED_CORPUS = Path(__file__).parent / "fuzz_corpus"


class TestBuiltinSeeds:
    def test_seeds_are_well_formed_and_round_trip(self):
        entries = builtin_seed_entries()
        assert len(entries) >= 4
        for entry in entries:
            assert entry == type(entry).from_dict(entry.to_dict())
            if entry.kind == "snapshot":
                pair = entry.pair()
                assert pair.n_rows > 0

    def test_seeds_pass_replay(self):
        for entry in builtin_seed_entries():
            assert replay_entry(entry) == [], entry.name


class TestCommittedCorpusReplay:
    """The regression gate: the committed corpus must replay clean."""

    def test_corpus_directory_is_committed_and_non_empty(self):
        assert COMMITTED_CORPUS.is_dir()
        assert list((COMMITTED_CORPUS / "seeds").glob("*.json"))

    def test_committed_corpus_replays_clean(self):
        failures = replay_corpus(COMMITTED_CORPUS)
        assert failures == {}


class TestShortRun:
    def test_seeded_run_on_healthy_build_is_clean(self, tmp_path):
        config = FuzzConfig(
            time_budget_seconds=6.0, seed=1, max_execs=40,
            corpus_root=tmp_path, payload_ratio=0.25,
        )
        report = FuzzRunner(config).run()
        assert report.ok
        assert report.execs == 40
        assert report.snapshot_execs + report.payload_execs == report.execs
        assert report.coverage_lines > 0
        assert report.coverage_backend in ("settrace", "monitoring")
        assert "findings: 0" in report.summary()
        # A clean run must not write findings.
        assert not list((tmp_path / FINDINGS_DIR).glob("*.json"))

    def test_run_is_deterministic_modulo_time(self, tmp_path):
        def run(seed):
            config = FuzzConfig(
                time_budget_seconds=30.0, seed=seed, max_execs=15,
                coverage_guided=False,
            )
            return FuzzRunner(config).run()

        first, second = run(7), run(7)
        assert first.snapshot_execs == second.snapshot_execs
        assert first.payload_execs == second.payload_execs

    def test_max_execs_zero_is_an_empty_run(self):
        report = FuzzRunner(FuzzConfig(max_execs=0)).run()
        assert report.execs == 0 and report.ok


@pytest.fixture
def broken_codes_engine(monkeypatch):
    """Corrupt the codes-blocking fast path only: the last dictionary code
    of every column collapses onto the first.  The rowwise and columnar
    engines are untouched, so agreement must break."""
    original = ColumnCache.source_value_codes

    def corrupted(self, attribute):
        codes = list(original(self, attribute))
        if self.codes_active and len(codes) >= 2 and codes[-1] != codes[0]:
            codes[-1] = codes[0]
        return codes

    monkeypatch.setattr(ColumnCache, "source_value_codes", corrupted)


class TestBrokenEngineDetection:
    """The acceptance gate of the whole subsystem: a real engine bug is
    found, shrunk, and preserved as a replayable regression input."""

    def test_oracle_detects_divergence(self, broken_codes_engine):
        pair = builtin_seed_entries()[0].pair()
        with pytest.raises(OracleFailure) as caught:
            engines_agree(pair, seed=0)
        assert caught.value.oracle.startswith("engines_agree")

    def test_minimizer_shrinks_failure_to_at_most_ten_rows(
        self, broken_codes_engine
    ):
        pair = builtin_seed_entries()[0].pair()

        def still_fails(candidate):
            try:
                engines_agree(candidate, seed=0)
            except OracleFailure:
                return True
            except Exception:  # noqa: BLE001 - unbuildable candidates
                return False
            return False

        result = minimize_pair(pair, still_fails)
        assert still_fails(result.pair)
        assert result.pair.n_rows <= 10
        assert result.rows_after <= result.rows_before

    def test_runner_emits_replayable_minimized_finding(
        self, broken_codes_engine, tmp_path, monkeypatch
    ):
        config = FuzzConfig(
            time_budget_seconds=25.0, seed=0, max_execs=60,
            corpus_root=tmp_path, coverage_guided=False,
            payload_ratio=0.0, max_findings=1,
        )
        report = FuzzRunner(config).run()
        assert not report.ok
        finding = report.findings[0]
        # Minimized to a small repro...
        assert finding.minimization is not None
        assert finding.minimization.pair.n_rows <= 10
        # ...saved as a corpus entry...
        assert finding.saved_path is not None and finding.saved_path.exists()
        assert finding.saved_path.parent == tmp_path / FINDINGS_DIR
        entry = load_entry(finding.saved_path)
        assert entry.oracles  # replay is pinned to the failing oracle
        # ...that still fails while the engine is broken...
        assert replay_entry(entry) != []
        # ...and passes once the shim is removed (the regression workflow).
        monkeypatch.undo()
        assert replay_entry(entry) == []
