"""Unit tests for the sampling-theory helpers (Sections 4.4.2 and 4.4.3)."""

import math

import pytest

from repro.core import (
    binomial_pmf,
    binomial_tail,
    cochran_sample_size,
    example_sample_size,
    generation_threshold,
)


class TestBinomialBasics:
    def test_pmf_sums_to_one(self):
        total = sum(binomial_pmf(k, 10, 0.3) for k in range(11))
        assert total == pytest.approx(1.0)

    def test_pmf_out_of_range_is_zero(self):
        assert binomial_pmf(-1, 10, 0.3) == 0.0
        assert binomial_pmf(11, 10, 0.3) == 0.0

    def test_pmf_known_value(self):
        assert binomial_pmf(2, 4, 0.5) == pytest.approx(6 / 16)

    def test_tail_edge_cases(self):
        assert binomial_tail(0, 10, 0.3) == 1.0
        assert binomial_tail(11, 10, 0.3) == 0.0

    def test_tail_monotonically_decreasing_in_threshold(self):
        values = [binomial_tail(k, 20, 0.4) for k in range(21)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_tail_complement_consistency(self):
        assert binomial_tail(3, 12, 0.25) == pytest.approx(
            1.0 - sum(binomial_pmf(k, 12, 0.25) for k in range(3))
        )


class TestExampleSampleSize:
    def test_paper_defaults(self):
        # θ = 0.1, ρ = 0.95, at least 5 generations.
        k = example_sample_size(0.1, 0.95, min_successes=5)
        assert binomial_tail(5, k, 0.1) >= 0.95
        assert binomial_tail(5, k - 1, 0.1) < 0.95

    def test_result_is_minimal(self):
        k = example_sample_size(0.3, 0.9, min_successes=3)
        assert binomial_tail(3, k, 0.3) >= 0.9
        assert binomial_tail(3, k - 1, 0.3) < 0.9

    def test_larger_theta_needs_fewer_samples(self):
        assert example_sample_size(0.5, 0.95) < example_sample_size(0.1, 0.95)

    def test_higher_confidence_needs_more_samples(self):
        assert example_sample_size(0.1, 0.99) > example_sample_size(0.1, 0.9)

    def test_theta_one_needs_exactly_min_successes(self):
        assert example_sample_size(1.0, 0.95, min_successes=5) == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            example_sample_size(0.0, 0.95)
        with pytest.raises(ValueError):
            example_sample_size(0.1, 1.0)
        with pytest.raises(ValueError):
            example_sample_size(0.1, 0.95, min_successes=0)

    def test_cap_respected_for_extreme_theta(self):
        assert example_sample_size(1e-6, 0.95, max_size=1000) == 1000


class TestGenerationThreshold:
    def test_full_budget_uses_min_successes(self):
        assert generation_threshold(90, 90) == 5
        assert generation_threshold(90, 500) == 5

    def test_scaled_down_for_small_tables(self):
        assert generation_threshold(90, 45) == math.ceil(5 * 45 / 90)
        assert generation_threshold(90, 9) == 1
        assert generation_threshold(90, 1) == 1

    def test_never_below_one(self):
        assert generation_threshold(90, 0) == 1
        assert generation_threshold(0, 10) == 1


class TestCochran:
    def test_paper_defaults_yield_139(self):
        # z = 1.96, e = 0.05, p = θ = 0.1 → 1.96² · 0.1 · 0.9 / 0.0025 = 138.3.
        assert cochran_sample_size(0.1) == 139

    def test_p_half_is_worst_case(self):
        assert cochran_sample_size(0.5) >= cochran_sample_size(0.1)
        assert cochran_sample_size(0.5) == math.ceil(1.96 ** 2 * 0.25 / 0.0025)

    def test_tighter_error_needs_more_samples(self):
        assert cochran_sample_size(0.1, error=0.01) > cochran_sample_size(0.1, error=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cochran_sample_size(0.0)
        with pytest.raises(ValueError):
            cochran_sample_size(1.0)
        with pytest.raises(ValueError):
            cochran_sample_size(0.1, error=0.0)

    def test_cap(self):
        assert cochran_sample_size(0.5, error=0.0001, max_size=1000) == 1000
