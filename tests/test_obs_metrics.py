"""Unit tests of :mod:`repro.obs.metrics`, the Prometheus renderer and the
trace exports (Chrome JSON + text tree)."""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    PROM_CONTENT_TYPE,
    Span,
    chrome_trace,
    get_registry,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series(self):
        counter = MetricsRegistry().counter("ops_total", label_names=("kind",))
        counter.inc(kind="read")
        counter.inc(3, kind="write")
        assert counter.value(kind="read") == 1.0
        assert counter.series() == {("read",): 1.0, ("write",): 3.0}

    def test_rejects_decrease_and_label_mismatch(self):
        counter = MetricsRegistry().counter("ops_total", label_names=("kind",))
        with pytest.raises(ValueError):
            counter.inc(-1, kind="read")
        with pytest.raises(ValueError):
            counter.inc()  # missing the label
        with pytest.raises(ValueError):
            counter.inc(kind="read", extra="nope")

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = MetricsRegistry().counter("hits_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6.0

    def test_function_gauge_sampled_at_collection(self):
        gauge = MetricsRegistry().gauge("pool_size")
        backing = {"n": 3}
        gauge.set_function(lambda: backing["n"])
        assert gauge.value() == 3.0
        backing["n"] = 7
        assert gauge.series() == {(): 7.0}

    def test_broken_function_gauge_yields_nan_not_crash(self):
        gauge = MetricsRegistry().gauge("flaky")

        def boom():
            raise RuntimeError("sensor offline")

        gauge.set_function(boom)
        (value,) = gauge.series().values()
        assert math.isnan(value)


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        (bucket_counts, total, count) = histogram.series()[()]
        assert bucket_counts == [1, 3, 4]  # cumulative: le=0.1, le=1, le=10
        assert count == 4
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(6.05)
        assert total == pytest.approx(6.05)

    def test_buckets_are_sorted_and_validated(self):
        histogram = MetricsRegistry().histogram("h", buckets=(5.0, 1.0))
        assert histogram.buckets == (1.0, 5.0)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty", buckets=())
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("inf", buckets=(1.0, float("inf")))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_total", "Jobs.", ("state",))
        again = registry.counter("jobs_total", "different help", ("state",))
        assert again is first
        assert registry.get("jobs_total") is first
        assert registry.names() == ("jobs_total",)

    def test_type_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", label_names=("state",))
        with pytest.raises(ValueError):
            registry.gauge("jobs_total", label_names=("state",))
        with pytest.raises(ValueError):
            registry.counter("jobs_total", label_names=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok_name", label_names=("bad-label",))

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestPrometheusRendering:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_ops_total", "Operations.", ("kind",))
        counter.inc(2, kind="read")
        gauge = registry.gauge("repro_depth", "Queue depth.")
        gauge.set(3)
        histogram = registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.5, 1.0))
        histogram.observe(0.25)
        histogram.observe(2.0)

        text = render_prometheus(registry)
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# HELP repro_ops_total Operations." in lines
        assert "# TYPE repro_ops_total counter" in lines
        assert 'repro_ops_total{kind="read"} 2' in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 3" in lines
        assert "# TYPE repro_latency_seconds histogram" in lines
        assert 'repro_latency_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="1"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_latency_seconds_sum 2.25" in lines
        assert "repro_latency_seconds_count 2" in lines

        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$")
        for line in lines:
            assert line.startswith("#") or sample.match(line), line

    def test_unlabeled_zero_samples_and_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_untouched_total", "Never incremented.")
        counter = registry.counter("repro_weird_total", "", ("path",))
        counter.inc(path='a"b\\c\nd')
        text = render_prometheus(registry)
        assert "repro_untouched_total 0" in text.splitlines()
        assert 'repro_weird_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_content_type_pins_the_exposition_version(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestChromeTrace:
    def _root(self) -> Span:
        return Span(
            name="explain", start=0.0, duration=1.0,
            children=(
                Span(name="search", start=0.1, duration=0.8,
                     counters=(("expansions", 12.0),)),
            ),
        )

    def test_events_use_microseconds_and_args(self):
        document = chrome_trace(self._root())
        assert document["displayTimeUnit"] == "ms"
        explain, search = document["traceEvents"]
        assert explain == {"name": "explain", "cat": "repro", "ph": "X",
                           "ts": 0.0, "dur": 1e6, "pid": 1, "tid": 1}
        assert search["ts"] == pytest.approx(1e5)
        assert search["args"] == {"expansions": 12.0}

    def test_roots_get_distinct_tids(self):
        roots = [Span(name=f"r{i}", start=0.0, duration=0.1) for i in range(3)]
        tids = [event["tid"] for event in chrome_trace(roots)["traceEvents"]]
        assert tids == [1, 2, 3]

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", self._root())
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["otherData"] == {"producer": "repro.obs"}
        assert len(document["traceEvents"]) == 2


class TestRenderSpanTree:
    def test_tree_layout_and_aggregation(self):
        root = Span(
            name="search", start=0.0, duration=1.0,
            children=tuple(
                Span(name="induction", start=0.1 * i, duration=0.1)
                for i in range(5)
            ),
        )
        text = render_span_tree(root)
        lines = text.splitlines()
        assert lines[0].split() == ["phase", "seconds", "share"]
        assert any("induction x5" in line for line in lines)
        assert lines[-1].startswith("total")
        assert "100.0%" in lines[-1]

    def test_child_overflow_is_summarised(self):
        root = Span(
            name="root", start=0.0, duration=1.0,
            children=tuple(
                Span(name=f"phase{i}", start=0.0, duration=0.01)
                for i in range(20)
            ),
        )
        text = render_span_tree(root, max_children=3)
        assert "... 17 more" in text
