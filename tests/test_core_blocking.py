"""Unit tests for blocking under search states (Definitions 4.3/4.4)."""

import pytest

from repro.core import (
    NOT_APPLICABLE_CODE,
    ColumnCache,
    ProblemInstance,
    SearchState,
    build_blocking,
    refine_blocking,
    refine_blocking_bounds,
)
from repro.core.blocking import NOT_APPLICABLE, transformed_column
from repro.dataio import Schema, Table
from repro.datagen.running_example import running_example_instance
from repro.functions import IDENTITY, ConstantValue, Division, ValueMapping


@pytest.fixture
def instance():
    schema = Schema(["kind", "amount"])
    source = Table(schema, [("A", "1000"), ("A", "2000"), ("B", "3000")])
    target = Table(schema, [("A", "1"), ("A", "2"), ("B", "3"), ("C", "9")])
    return ProblemInstance(source=source, target=target)


class TestBuildBlocking:
    def test_no_assignments_yields_single_block(self, instance):
        blocking = build_blocking(instance, SearchState.empty(instance.schema))
        assert len(blocking) == 1
        block = next(iter(blocking))
        assert len(block.source_ids) == 3
        assert len(block.target_ids) == 4

    def test_identity_assignment_groups_by_value(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state)
        assert len(blocking) == 3  # A, B, C
        mixed = blocking.mixed_blocks()
        assert len(mixed) == 2  # A and B have both sides

    def test_source_cells_are_transformed_before_blocking(self, instance):
        state = SearchState.empty(instance.schema).extend("amount", Division(1000))
        blocking = build_blocking(instance, state)
        # "1000"/1000 = "1" matches target "1": a mixed block must exist.
        assert any(
            block.is_mixed and len(block.source_ids) == 1 for block in blocking
        )

    def test_inapplicable_cells_never_match_targets(self, instance):
        state = SearchState.empty(instance.schema).extend("amount", ValueMapping({}))
        blocking = build_blocking(instance, state)
        assert blocking.unaligned_source_bound() == 3
        assert blocking.unaligned_target_bound() == 4

    def test_transformed_column_marks_inapplicable_cells(self, instance):
        column = transformed_column(instance.source, "amount", ValueMapping({"1000": "x"}))
        assert column == ["x", NOT_APPLICABLE, NOT_APPLICABLE]


class TestBounds:
    def test_bounds_with_no_assignment(self, instance):
        blocking = build_blocking(instance, SearchState.empty(instance.schema))
        assert blocking.unaligned_target_bound() == 1  # |T| - |S|
        assert blocking.unaligned_source_bound() == 0

    def test_bounds_with_identity(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state)
        # block C has a target but no source record
        assert blocking.unaligned_target_bound() == 1
        assert blocking.unaligned_source_bound() == 0

    def test_bounds_with_constant(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", ConstantValue("A"))
        blocking = build_blocking(instance, state)
        # all sources land in block A (2 targets), so one source is surplus,
        # and blocks B and C have surplus targets.
        assert blocking.unaligned_source_bound() == 1
        assert blocking.unaligned_target_bound() == 2


class TestRefinement:
    def test_refine_equals_build_from_scratch(self, instance):
        base_state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        base = build_blocking(instance, base_state)
        refined = refine_blocking(instance, base, "amount", Division(1000))

        full_state = base_state.extend("amount", Division(1000))
        rebuilt = build_blocking(instance, full_state)

        assert refined.unaligned_source_bound() == rebuilt.unaligned_source_bound()
        assert refined.unaligned_target_bound() == rebuilt.unaligned_target_bound()
        assert len(refined.mixed_blocks()) == len(rebuilt.mixed_blocks())

    def test_refine_on_running_example(self):
        instance = running_example_instance()
        state = SearchState.empty(instance.schema).extend("Type", IDENTITY)
        base = build_blocking(instance, state)
        refined = refine_blocking(instance, base, "Org", IDENTITY)
        state2 = state.extend("Org", IDENTITY)
        rebuilt = build_blocking(instance, state2)
        assert refined.unaligned_source_bound() == rebuilt.unaligned_source_bound()
        assert refined.unaligned_target_bound() == rebuilt.unaligned_target_bound()


def _block_contents(blocking):
    """The blocks as ``(source_ids, target_ids)`` pairs in first-seen order —
    the representation every engine must agree on exactly (the search's RNG
    consumption depends on the order)."""
    return [(block.source_ids, block.target_ids) for block in blocking]


class TestEncodedBlocking:
    def _caches(self, instance):
        return (
            ColumnCache(instance.source),               # encoded (codes on)
            ColumnCache(instance.source, codes=False),  # string-keyed baseline
        )

    def test_encoded_build_matches_string_build(self):
        instance = running_example_instance()
        encoded_cache, string_cache = self._caches(instance)
        state = (
            SearchState.empty(instance.schema)
            .extend("Type", IDENTITY)
            .extend("Unit", ConstantValue("k $"))
            .extend("Org", IDENTITY)
        )
        encoded = build_blocking(instance, state, encoded_cache)
        strings = build_blocking(instance, state, string_cache)
        assert _block_contents(encoded) == _block_contents(strings)
        assert encoded.unaligned_bounds() == strings.unaligned_bounds()

    def test_encoded_keys_are_integer_tuples(self, instance):
        cache = ColumnCache(instance.source)
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state, cache)
        for key in blocking.blocks:
            assert all(isinstance(component, int) for component in key)

    def test_encoded_refine_matches_string_refine(self, instance):
        encoded_cache, string_cache = self._caches(instance)
        base_state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        encoded = refine_blocking(
            instance, build_blocking(instance, base_state, encoded_cache),
            "amount", Division(1000), encoded_cache,
        )
        strings = refine_blocking(
            instance, build_blocking(instance, base_state, string_cache),
            "amount", Division(1000), string_cache,
        )
        assert _block_contents(encoded) == _block_contents(strings)

    @pytest.mark.parametrize("codes", [True, False])
    def test_bounds_only_refinement_matches_materialised(self, instance, codes):
        cache = ColumnCache(instance.source, codes=codes)
        base = build_blocking(
            instance, SearchState.empty(instance.schema).extend("kind", IDENTITY),
            cache,
        )
        for function in (IDENTITY, Division(1000), ConstantValue("1"),
                         ValueMapping({"1000": "1"})):
            materialised = refine_blocking(
                instance, base, "amount", function, cache
            ).unaligned_bounds()
            bounds_only = refine_blocking_bounds(
                instance, base, "amount", function, cache
            )
            assert bounds_only == materialised

    def test_not_applicable_code_never_matches_targets(self, instance):
        cache = ColumnCache(instance.source)
        state = SearchState.empty(instance.schema).extend("amount", ValueMapping({}))
        blocking = build_blocking(instance, state, cache)
        assert blocking.unaligned_source_bound() == 3
        assert blocking.unaligned_target_bound() == 4
        # The inapplicable cells carry the reserved code, which the target
        # encoding never assigns to a real value.
        codes = cache.transformed_codes("amount", ValueMapping({}))
        assert set(codes) == {NOT_APPLICABLE_CODE}
        target_codes = cache.encoded_column(
            "amount", instance.target.column_view("amount")
        )
        assert NOT_APPLICABLE_CODE not in target_codes


class TestMemoizedViews:
    def test_unaligned_bounds_are_computed_once(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state)
        first = blocking.unaligned_bounds()
        assert blocking.unaligned_bounds() is first

    def test_mixed_blocks_are_computed_once(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state)
        first = blocking.mixed_blocks()
        assert blocking.mixed_blocks() is first
        assert len(first) == 2


class TestIndeterminacy:
    def test_max_distinct_source_values(self, instance):
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        blocking = build_blocking(instance, state)
        # in block A there are two distinct amounts, in block B one.
        assert blocking.max_distinct_source_values(instance.source, "amount") == 2
        assert blocking.max_distinct_source_values(instance.source, "kind") == 1

    def test_running_example_figure3_block(self):
        # Figure 3: under H₁ = (*, *, *, id, *, const 'k $', id) the block with
        # index ('C', 'k $', 'SAP') holds S08, S09, S10 and T08, T10.
        instance = running_example_instance()
        state = (
            SearchState.empty(instance.schema)
            .extend("Type", IDENTITY)
            .extend("Unit", ConstantValue("k $"))
            .extend("Org", IDENTITY)
        )
        blocking = build_blocking(instance, state)
        source = instance.source
        target = instance.target
        matching = [
            block for block in blocking
            if {source.cell(i, "ID1") for i in block.source_ids} == {"S08", "S09", "S10"}
        ]
        assert len(matching) == 1
        block = matching[0]
        assert {target.cell(i, "ID1") for i in block.target_ids} == {"T08", "T10"}
        assert block.surplus_sources == 1
        assert block.surplus_targets == 0
