"""Tests of the experiment harness (Table 2 / Figure 5 / Figure 6) and reporting."""

import pytest

from repro.core import identity_configuration, overlap_configuration
from repro.datagen.datasets import load_dataset
from repro.evaluation import (
    EVALUATION_SETTINGS,
    default_configurations,
    format_attribute_scalability,
    format_row_scalability,
    format_table2,
    generate_instances,
    linear_fit,
    run_attribute_scalability,
    run_configuration,
    run_row_scalability,
    run_table2,
    run_table2_cell,
)

#: Fast, laptop-sized overrides used throughout these tests.
FAST = dict(n_instances=2, n_records=120, seed=1)


class TestProtocolBasics:
    def test_settings_match_paper(self):
        assert EVALUATION_SETTINGS == ((0.3, 0.3), (0.5, 0.5), (0.7, 0.7))

    def test_default_configurations(self):
        configs = default_configurations()
        assert set(configs) == {"Hs", "Hid"}
        assert configs["Hid"].queue_width == 5
        assert configs["Hs"].queue_width == 1

    def test_generate_instances_count_and_names(self):
        table = load_dataset("iris", 100, seed=2)
        instances = generate_instances(table, eta=0.3, tau=0.3, n_instances=3, name="iris")
        assert len(instances) == 3
        assert {g.instance.name for g in instances} == {"iris#0", "iris#1", "iris#2"}

    def test_run_configuration_returns_one_metric_per_instance(self):
        table = load_dataset("iris", 100, seed=2)
        instances = generate_instances(table, eta=0.3, tau=0.3, n_instances=2)
        metrics = run_configuration(instances, overlap_configuration())
        assert len(metrics) == 2


class TestTable2Harness:
    def test_single_cell(self):
        cell = run_table2_cell("iris", eta=0.3, tau=0.3, configuration="Hid", **FAST)
        assert cell.dataset == "iris"
        assert cell.aggregate.n_runs == 2
        assert cell.aggregate.accuracy > 0.5
        assert len(cell.runs) == 2
        assert cell.setting == "eta=0.3, tau=0.3"

    def test_run_table2_produces_full_grid(self):
        cells = run_table2(
            ["iris"],
            settings=((0.3, 0.3),),
            n_instances=1,
            records_override={"iris": 100},
            seed=2,
        )
        # 1 dataset × 2 configurations × 1 setting
        assert len(cells) == 2
        assert {cell.configuration for cell in cells} == {"Hs", "Hid"}

    def test_custom_configuration_subset(self):
        cells = run_table2(
            ["balance"],
            settings=((0.3, 0.3),),
            configurations={"Hid": identity_configuration()},
            n_instances=1,
            records_override={"balance": 120},
            seed=3,
        )
        assert len(cells) == 1
        assert cells[0].configuration == "Hid"


class TestScalabilityHarness:
    def test_row_scalability_points(self):
        points = run_row_scalability(
            n_records=400, fractions=(0.5, 1.0), seed=2
        )
        assert len(points) == 2
        assert points[0].n_records < points[1].n_records
        assert all(point.runtime_seconds > 0 for point in points)
        assert all(point.n_attributes == 20 for point in points)

    def test_attribute_scalability_sorted_by_attribute_count(self):
        points = run_attribute_scalability(
            ["balance", "iris"],
            records_override={"iris": 100, "balance": 100},
            n_instances=1,
            seed=2,
        )
        assert [point.n_attributes for point in points] == sorted(
            point.n_attributes for point in points
        )
        assert all(point.seconds_per_record > 0 for point in points)


class TestReporting:
    def test_format_table2(self):
        cells = run_table2(
            ["iris"],
            settings=((0.3, 0.3),),
            n_instances=1,
            records_override={"iris": 100},
            seed=2,
        )
        text = format_table2(cells)
        assert "dataset" in text and "d_core" in text and "acc" in text
        assert "iris" in text
        assert len(text.splitlines()) == 2 + len(cells)

    def test_format_row_scalability(self):
        points = run_row_scalability(n_records=300, fractions=(0.5, 1.0), seed=2)
        text = format_row_scalability(points)
        assert "records" in text and "runtime" in text
        assert "50%" in text and "100%" in text

    def test_format_attribute_scalability(self):
        points = run_attribute_scalability(
            ["iris"], records_override={"iris": 100}, n_instances=1, seed=2
        )
        text = format_attribute_scalability(points)
        assert "attributes" in text and "s/record" in text


class TestLinearFit:
    def test_perfect_line(self):
        slope, intercept, r_squared = linear_fit([(1, 2), (2, 4), (3, 6)])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0)
        assert r_squared == pytest.approx(1.0)

    def test_noisy_but_linear(self):
        points = [(x, 3 * x + 1 + (0.1 if x % 2 else -0.1)) for x in range(1, 10)]
        slope, intercept, r_squared = linear_fit(points)
        assert slope == pytest.approx(3.0, rel=0.05)
        assert r_squared > 0.99

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([(1, 1)])
        with pytest.raises(ValueError):
            linear_fit([(1, 1), (1, 2)])

    def test_constant_y_has_full_r_squared(self):
        slope, intercept, r_squared = linear_fit([(1, 5), (2, 5), (3, 5)])
        assert slope == pytest.approx(0.0)
        assert r_squared == pytest.approx(1.0)
