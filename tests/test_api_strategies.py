"""Tests of the budgeted strategy chain (repro.api.strategies / budget)."""

import pytest

from repro.api import (
    CONFIDENCE_LABELS,
    DEFAULT_STRATEGY,
    SCHEMA_VERSION,
    SCHEMA_VERSION_V2,
    TIER_STATUSES,
    TIERS,
    ChainRun,
    Deadline,
    ExplainBudget,
    ExplainOutcome,
    ExplainRequest,
    ExplainSession,
    RequestValidationError,
    StrategyChain,
    TierCache,
    TierResult,
)
from repro.api.outcome import Provenance
from repro.core import Affidavit, identity_configuration
from repro.datagen import generate_problem_instance
from repro.datagen.datasets import load_dataset

SOURCE_CSV = "id,val\n1,100\n2,200\n3,300\n"
TARGET_CSV = "id,val\n1,1\n2,2\n3,3\n"


def inline_request(**kwargs):
    return ExplainRequest(source_csv=SOURCE_CSV, target_csv=TARGET_CSV, **kwargs)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# --------------------------------------------------------------------- #
# budgets and deadlines
# --------------------------------------------------------------------- #
class TestExplainBudget:
    def test_bare_number_shorthand(self):
        assert ExplainBudget.from_dict(50) == ExplainBudget(deadline_ms=50.0)

    def test_round_trip(self):
        budget = ExplainBudget(deadline_ms=250.0, max_compression_ratio=0.8)
        assert ExplainBudget.from_dict(budget.to_dict()) == budget

    @pytest.mark.parametrize("kwargs", [
        {"deadline_ms": 0},
        {"deadline_ms": -1},
        {"deadline_ms": float("inf")},
        {"deadline_ms": float("nan")},
        {"deadline_ms": True},
        {"max_compression_ratio": 0.0},
        {"max_compression_ratio": "tight"},
    ])
    def test_rejects_non_positive_or_non_numeric(self, kwargs):
        with pytest.raises(RequestValidationError):
            ExplainBudget(**kwargs)

    def test_rejects_unknown_fields(self):
        with pytest.raises(RequestValidationError, match="unknown budget"):
            ExplainBudget.from_dict({"deadline_ms": 5, "retries": 3})


class TestDeadline:
    def test_unbounded_deadline_never_interferes(self):
        deadline = Deadline(None)
        assert not deadline.bounded
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        # Crucial for bit-identity: no predicate means should_stop stays
        # None on the engine config.
        assert deadline.should_stop() is None

    def test_bounded_deadline_expires_on_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.bounded
        assert deadline.remaining() == 1.0
        predicate = deadline.should_stop()
        assert predicate is not None and not predicate()
        clock.now = 2.0
        assert deadline.expired()
        assert predicate()

    def test_sub_deadline_is_clamped_to_the_parent(self):
        clock = FakeClock()
        parent = Deadline(1.0, clock=clock)
        child = parent.sub_deadline(10.0)
        assert child.remaining() <= parent.remaining()
        generous = Deadline(None, clock=clock).sub_deadline(3.0)
        assert generous.bounded and generous.remaining() == 3.0

    def test_from_budget(self):
        assert not Deadline.from_budget(None).bounded
        assert not Deadline.from_budget(ExplainBudget()).bounded
        assert Deadline.from_budget(ExplainBudget(deadline_ms=10)).bounded


class TestTierResult:
    def test_round_trip(self):
        result = TierResult(tier="greedy", status="answered",
                            confidence="approximate", elapsed_seconds=0.25,
                            detail="width-1 search")
        assert TierResult.from_dict(result.to_dict()) == result

    def test_outcome_is_excluded_from_comparison_and_wire_form(self):
        bare = TierResult(tier="full", status="answered", confidence="exact")
        loaded = TierResult(tier="full", status="answered", confidence="exact",
                            outcome=object())
        assert bare == loaded
        assert "outcome" not in loaded.to_dict()

    @pytest.mark.parametrize("payload", [
        {"tier": "oracle", "status": "answered"},
        {"tier": "full", "status": "maybe"},
        {"tier": "full", "status": "answered", "confidence": "certain"},
        {"tier": "full", "status": "answered", "elapsed_seconds": "fast"},
    ])
    def test_unknown_vocabulary_is_rejected(self, payload):
        with pytest.raises(RequestValidationError):
            TierResult.from_dict(payload)


# --------------------------------------------------------------------- #
# provenance strictness
# --------------------------------------------------------------------- #
class TestProvenanceTierStrictness:
    def _outcome_payload(self):
        outcome = ExplainSession().explain(inline_request())
        return outcome.to_dict()

    def test_unknown_tier_is_rejected(self):
        payload = self._outcome_payload()
        payload["provenance"]["tier"] = "oracle"
        with pytest.raises(RequestValidationError, match="tier"):
            ExplainOutcome.from_dict(payload)

    def test_unknown_confidence_is_rejected(self):
        payload = self._outcome_payload()
        payload["provenance"]["confidence"] = "certain"
        with pytest.raises(RequestValidationError, match="confidence"):
            ExplainOutcome.from_dict(payload)

    def test_legacy_payload_without_tier_defaults_to_full_exact(self):
        payload = self._outcome_payload()
        del payload["provenance"]["tier"]
        del payload["provenance"]["confidence"]
        rebuilt = ExplainOutcome.from_dict(payload)
        assert rebuilt.provenance.tier == "full"
        assert rebuilt.provenance.confidence == "exact"

    def test_vocabularies_are_closed_and_ordered(self):
        assert DEFAULT_STRATEGY == TIERS
        assert set(TIER_STATUSES) == {"answered", "skipped", "timeout", "failed"}
        # best-to-worst order is what the chain's tie-break relies on
        assert CONFIDENCE_LABELS.index("exact") < CONFIDENCE_LABELS.index("approximate")
        assert CONFIDENCE_LABELS.index("cached") < CONFIDENCE_LABELS.index("trivial")


# --------------------------------------------------------------------- #
# the tier cache
# --------------------------------------------------------------------- #
class TestTierCache:
    def test_path_requests_are_not_cacheable(self):
        request = ExplainRequest(source_path="a.csv", target_path="b.csv")
        assert TierCache.key_for(request) is None

    def test_use_cache_false_disables_keying(self):
        assert TierCache.key_for(inline_request(use_cache=False)) is None

    def test_key_is_budget_stripped(self):
        plain = inline_request()
        budgeted = inline_request(budget=ExplainBudget(deadline_ms=50),
                                  strategy=("greedy", "full"))
        assert TierCache.key_for(plain) == TierCache.key_for(budgeted)
        assert TierCache.key_for(plain) == plain.canonical_key()

    def test_lru_eviction(self):
        cache = TierCache(max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refresh a
        cache.put("c", "C")           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"

    def test_rejects_nonsense_capacity(self):
        with pytest.raises(ValueError):
            TierCache(max_entries=0)


# --------------------------------------------------------------------- #
# the chain walk
# --------------------------------------------------------------------- #
class TestStrategyChain:
    def test_unbudgeted_run_bypasses_the_chain(self):
        outcome = ExplainSession().explain(inline_request())
        assert outcome.tiers is None
        assert outcome.provenance.tier == "full"
        assert outcome.provenance.confidence == "exact"
        assert outcome.provenance.api_version == SCHEMA_VERSION

    def test_generous_budget_walks_to_an_exact_full_answer(self):
        outcome = ExplainSession().with_budget(60_000).explain(inline_request())
        assert outcome.provenance.tier == "full"
        assert outcome.provenance.confidence == "exact"
        assert outcome.tiers is not None
        by_tier = {attempt.tier: attempt for attempt in outcome.tiers}
        assert by_tier["cache"].status == "skipped"
        assert by_tier["greedy"].status == "answered"
        assert by_tier["full"].status == "answered"
        assert by_tier["trivial"].status == "skipped"
        assert "tier" in outcome.summary()
        assert "strategy chain" in outcome.summary()

    def test_second_identical_request_is_served_from_the_tier_cache(self):
        session = ExplainSession().with_budget(60_000)
        first = session.explain(inline_request())
        second = session.explain(inline_request())
        assert second.provenance.tier == "cache"
        assert second.provenance.confidence == "cached"
        assert second.cost == first.cost
        assert second.explanation == first.explanation

    def test_request_level_budget_routes_through_the_chain(self):
        request = inline_request(budget=60_000)
        outcome = ExplainSession().explain(request)
        assert outcome.tiers is not None
        assert outcome.provenance.api_version == SCHEMA_VERSION_V2

    def test_tiny_budget_still_answers_with_honest_provenance(self):
        # The acceptance property: an aggressively small budget returns a
        # valid outcome, never an error, and names the tier that answered.
        request = inline_request(budget=ExplainBudget(deadline_ms=0.001))
        outcome = ExplainSession().explain(request)
        outcome.explanation.validate(outcome.instance)
        assert outcome.provenance.tier in TIERS
        assert outcome.cost <= outcome.trivial_cost
        statuses = {attempt.tier: attempt.status for attempt in outcome.tiers}
        assert statuses["greedy"] == "timeout"

    def test_baseline_only_strategy_answers_via_the_baseline(self):
        session = ExplainSession().with_budget(None, strategy=("keyed_diff",))
        outcome = session.explain(inline_request())
        assert outcome.provenance.tier == "keyed_diff"
        assert outcome.provenance.confidence == "baseline"
        assert outcome.provenance.engine == "baseline"

    def test_unreachable_strategy_falls_back_to_trivial(self):
        # A cache-only strategy with a cold cache answers with the implicit
        # trivial fallback instead of failing.
        session = ExplainSession().with_budget(None, strategy=("cache",))
        outcome = session.explain(inline_request())
        assert outcome.provenance.tier == "trivial"
        assert outcome.cost == outcome.trivial_cost
        attempts = {a.tier: a.status for a in outcome.tiers}
        assert attempts["cache"] == "skipped"
        assert attempts["trivial"] == "answered"

    def test_greedy_only_strategy_is_labelled_approximate(self):
        session = ExplainSession().with_budget(None, strategy=("greedy",))
        outcome = session.explain(inline_request())
        assert outcome.provenance.tier == "greedy"
        assert outcome.provenance.confidence == "approximate"
        outcome.explanation.validate(outcome.instance)

    def test_chain_run_exposes_the_answering_tier(self):
        session = ExplainSession()
        request = inline_request()
        instance, load_seconds = session._materialise(request)
        run = StrategyChain(session, strategy=("full",)).run(
            instance, request, load_seconds=load_seconds
        )
        assert isinstance(run, ChainRun)
        assert run.answered_by == "full"
        assert run.confidence == "exact"
        assert run.attempts == run.outcome.tiers

    def test_invalid_strategy_is_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown strategy"):
            StrategyChain(ExplainSession(), strategy=("warp",))
        with pytest.raises(RequestValidationError, match="repeat"):
            StrategyChain(ExplainSession(), strategy=("full", "full"))

    def test_with_budget_coercion_and_rejection(self):
        session = ExplainSession().with_budget(50)
        assert session._budget == ExplainBudget(deadline_ms=50.0)
        assert session.with_budget(None)._budget is None
        with pytest.raises(RequestValidationError):
            ExplainSession().with_budget(True)
        with pytest.raises(RequestValidationError):
            ExplainSession().with_budget("fast")

    def test_outcome_with_tiers_round_trips(self):
        outcome = ExplainSession().with_budget(60_000).explain(inline_request())
        rebuilt = ExplainOutcome.from_dict(outcome.to_dict())
        assert rebuilt.provenance == outcome.provenance
        assert rebuilt.tiers == outcome.tiers
        assert rebuilt.cost == outcome.cost


# --------------------------------------------------------------------- #
# exactness and cross-tier agreement
# --------------------------------------------------------------------- #
class TestBudgetNoneBitIdentity:
    """budget=None must be bit-identical to the plain full search on all
    four engine configurations (the chain is never entered)."""

    ENGINE_REQUESTS = {
        "encoded-columnar": {"engine": "columnar"},
        "string-columnar": {"engine": "columnar",
                            "overrides": {"blocking_codes": False}},
        "rowwise": {"engine": "rowwise"},
        "parallel": {"engine": "parallel",
                     "overrides": {"parallel_workers": 2}},
    }

    @pytest.mark.parametrize("label", sorted(ENGINE_REQUESTS))
    def test_session_without_budget_matches_direct_search(self, label):
        request = inline_request(overrides={
            "seed": 13, **self.ENGINE_REQUESTS[label].get("overrides", {})
        }, engine=self.ENGINE_REQUESTS[label]["engine"])
        with ExplainSession() as session:
            outcome = session.explain(request)
        instance, _ = ExplainSession()._materialise(inline_request())
        direct = Affidavit(identity_configuration(seed=13)).explain(instance)
        assert outcome.tiers is None
        assert outcome.cost == direct.cost
        assert outcome.explanation.functions == direct.explanation.functions
        assert outcome.explanation.alignment == direct.explanation.alignment
        assert outcome.expansions == direct.expansions
        assert outcome.generated_states == direct.generated_states

    def test_full_tier_under_generous_budget_matches_unbudgeted_run(self):
        plain = ExplainSession().explain(inline_request(overrides={"seed": 13}))
        budgeted = (
            ExplainSession()
            .with_budget(600_000, strategy=("full",))
            .explain(inline_request(overrides={"seed": 13}))
        )
        assert budgeted.provenance.confidence == "exact"
        assert budgeted.cost == plain.cost
        assert budgeted.explanation == plain.explanation
        assert budgeted.expansions == plain.expansions


class TestCrossTierAgreement:
    """The greedy tier is a sound relaxation of the full search: on the
    paper's Figure-5 workload (flight surrogate, η = τ = 0.3) it returns a
    valid explanation whose cost is never better than the full answer."""

    @pytest.fixture(scope="class", params=[3, 11])
    def generated(self, request):
        table = load_dataset("flight-500k", 200, seed=request.param)
        return generate_problem_instance(
            table, eta=0.3, tau=0.3, seed=request.param, name="figure5"
        )

    def test_greedy_cost_is_no_better_than_full(self, generated):
        instance = generated.instance
        full = ExplainSession().explain_instance(instance)
        greedy = (
            ExplainSession()
            .with_budget(None, strategy=("greedy",))
            .explain_instance(instance)
        )
        greedy.explanation.validate(instance)
        assert greedy.cost >= full.cost
        assert greedy.cost <= greedy.trivial_cost
        assert greedy.provenance.confidence == "approximate"
        assert full.provenance.confidence == "exact"
