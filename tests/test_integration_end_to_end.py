"""Integration tests: generated instances → search → metrics, across modules.

These tests exercise the full pipeline the benchmarks use (dataset surrogate →
Section-5.1 instance generation → Affidavit search → Section-5.2 metrics) on
small record counts so they stay fast, and additionally compare Affidavit
against the baselines on the key-reassignment scenario that motivates the
paper.
"""

import pytest

from repro.baselines import KeyedDiffExplainer, SimilarityExplainer, TrivialExplainer
from repro.core import Affidavit, identity_configuration, overlap_configuration
from repro.datagen import ARTIFICIAL_KEY_ATTRIBUTE, generate_problem_instance
from repro.datagen.datasets import load_dataset
from repro.evaluation import alignment_precision_recall, evaluate_result


@pytest.fixture(scope="module")
def easy_instance():
    """(η = 0.3, τ = 0.3) on a 200-record surrogate of the nursery dataset."""
    table = load_dataset("nursery", 200, seed=4)
    return generate_problem_instance(table, eta=0.3, tau=0.3, seed=17, name="nursery-easy")


@pytest.fixture(scope="module")
def hard_instance():
    """(η = 0.7, τ = 0.7): the paper's hardest difficulty setting."""
    table = load_dataset("ncvoter-1k", 200, seed=4)
    return generate_problem_instance(table, eta=0.7, tau=0.7, seed=23, name="ncvoter-hard")


class TestEasySetting:
    @pytest.fixture(scope="class", params=["Hid", "Hs"])
    def outcome(self, request, easy_instance):
        config = identity_configuration() if request.param == "Hid" else overlap_configuration()
        result = Affidavit(config).explain(easy_instance.instance)
        return easy_instance, result

    def test_explanation_is_valid(self, outcome):
        generated, result = outcome
        result.explanation.validate(generated.instance)

    def test_quality_close_to_reference(self, outcome):
        generated, result = outcome
        metrics = evaluate_result(generated, result)
        assert metrics.accuracy >= 0.9
        assert metrics.delta_costs <= 1.15
        assert 0.85 <= metrics.delta_core <= 1.15

    def test_beats_trivial_baseline(self, outcome):
        generated, result = outcome
        trivial = TrivialExplainer().explain(generated.instance)
        assert result.cost < trivial.cost

    def test_learned_functions_generalise_to_deleted_records(self, outcome):
        # The headline benefit claimed in the introduction: the explanation can
        # transform *unseen* (here: deleted) source records.
        generated, result = outcome
        instance = generated.instance
        attributes = instance.schema.attributes
        for source_id in generated.reference.deleted_source_ids[:10]:
            row = instance.source.row(source_id)
            transformed = result.explanation.transform_record(attributes, row)
            for attribute, produced in zip(attributes, transformed):
                if attribute == generated.key_attribute:
                    continue
                expected = generated.transformations[attribute].apply(
                    row[instance.schema.index_of(attribute)]
                )
                if produced is not None:
                    assert produced == expected


class TestHardSetting:
    def test_search_still_produces_valid_and_useful_explanations(self, hard_instance):
        result = Affidavit(identity_configuration()).explain(hard_instance.instance)
        result.explanation.validate(hard_instance.instance)
        metrics = evaluate_result(hard_instance, result)
        # Under 70% noise the paper itself reports degraded quality; we only
        # require that the search does not collapse entirely.
        assert metrics.accuracy >= 0.5
        assert result.cost <= result.trivial_cost


class TestAgainstBaselines:
    """Baselines are exercised through the Explainer protocol only — the
    same interface the strategy chain serves them through."""

    def test_keyed_diff_fails_under_key_reassignment(self, easy_instance):
        generated = easy_instance
        explainer = KeyedDiffExplainer([ARTIFICIAL_KEY_ATTRIBUTE])
        alignment = explainer.align(generated.instance)
        reference_pairs = set(generated.reference.alignment.items())
        keyed_correct = sum(
            1 for pair in alignment.items() if pair in reference_pairs
        )
        # the reassigned key aligns records essentially at random
        assert keyed_correct < len(reference_pairs) * 0.2

        result = Affidavit(identity_configuration()).explain(generated.instance)
        scores = alignment_precision_recall(generated, result.explanation)
        assert scores["f1"] > 0.8

    def test_similarity_linker_is_weaker_than_affidavit(self, easy_instance):
        generated = easy_instance
        alignment = SimilarityExplainer().align(generated.instance)
        reference_pairs = set(generated.reference.alignment.items())
        similarity_correct = sum(
            1 for pair in alignment.items() if pair in reference_pairs
        )
        result = Affidavit(identity_configuration()).explain(generated.instance)
        affidavit_correct = sum(
            1 for pair in result.explanation.alignment.items() if pair in reference_pairs
        )
        assert affidavit_correct >= similarity_correct

    def test_baseline_outcomes_are_honest_valid_explanations(self, easy_instance):
        # The adapted outcomes must be *valid* explanations (Definition 3.5):
        # identity functions with the alignment filtered to exact matches —
        # which is exactly why their cost cannot flatter them.
        generated = easy_instance
        for explainer in (KeyedDiffExplainer([ARTIFICIAL_KEY_ATTRIBUTE]),
                          SimilarityExplainer(), TrivialExplainer()):
            outcome = explainer.explain(generated.instance)
            outcome.explanation.validate(generated.instance)
            assert outcome.provenance.engine == "baseline"
            assert outcome.provenance.tier == explainer.name
            assert outcome.cost <= outcome.trivial_cost


class TestWideTable:
    def test_many_attribute_instance_runs_end_to_end(self):
        table = load_dataset("plista", 150, seed=6)
        generated = generate_problem_instance(table, eta=0.3, tau=0.3, seed=31, name="plista-it")
        result = Affidavit(overlap_configuration()).explain(generated.instance)
        result.explanation.validate(generated.instance)
        metrics = evaluate_result(generated, result)
        assert metrics.accuracy >= 0.8
