"""Tests of the sharded parallel engine (``repro.core.parallel``).

The contract under test: ``engine="parallel"`` is a pure wall-clock
optimisation — bit-identical explanations, costs and search trajectories to
the columnar engine, across every front door; pools are bounded, reused, and
torn down on ``close()``.

Process pools are expensive to start, so the module shares one two-worker
pool across all tests that need a real pool, and pins the remote-dispatch
thresholds to 0 so even the paper's 13-record running example exercises the
worker processes.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    ENGINE_PARALLEL,
    ENGINES,
    ExplainRequest,
    RequestValidationError,
    Session,
    resolve_config,
)
from repro.core import (
    Affidavit,
    PoolUnavailable,
    ShardPool,
    default_parallel_workers,
    engine_name,
    identity_configuration,
)
from repro.core import parallel as parallel_module
from repro.core.parallel import split_contiguous, split_weighted
from repro.datagen import generate_problem_instance
from repro.datagen.datasets import load_dataset


@pytest.fixture(scope="module")
def shared_pool():
    pool = ShardPool(2)
    yield pool
    pool.close()


@pytest.fixture
def remote_everything(monkeypatch):
    """Force every phase through the pool, however small the workload."""
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_EXAMPLES", 0)
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_RECORDS", 0)


def _assert_bit_identical(result, reference):
    assert result.cost == reference.cost
    assert result.explanation.functions == reference.explanation.functions
    assert result.explanation.n_inserted == reference.explanation.n_inserted
    assert result.explanation.n_deleted == reference.explanation.n_deleted
    assert result.end_state == reference.end_state
    assert result.expansions == reference.expansions
    assert result.generated_states == reference.generated_states


# --------------------------------------------------------------------------- #
# shard splitting
# --------------------------------------------------------------------------- #
class TestShardSplitting:
    @pytest.mark.parametrize("total,parts", [(0, 1), (1, 1), (5, 2), (7, 3), (3, 8)])
    def test_contiguous_concatenation_invariant(self, total, parts):
        items = list(range(total))
        chunks = split_contiguous(items, parts)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= parts
        assert all(chunks)

    def test_contiguous_is_near_even(self):
        sizes = [len(chunk) for chunk in split_contiguous(list(range(10)), 4)]
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("weights,parts", [
        ([1] * 12, 4),
        ([100, 1, 1, 1, 1, 1], 3),
        ([1, 1, 1, 1, 1, 100], 3),
        ([5], 4),
        ([], 2),
    ])
    def test_weighted_concatenation_invariant(self, weights, parts):
        items = list(range(len(weights)))
        chunks = split_weighted(items, weights, parts)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= parts
        assert all(chunks)

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            split_contiguous([1], 0)
        with pytest.raises(ValueError):
            split_weighted([1], [1], 0)


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
class TestShardPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardPool(0)

    def test_lazy_start_and_close_idempotent(self):
        pool = ShardPool(2)
        assert not pool.started
        assert pool.available()
        pool.close()
        pool.close()
        assert not pool.available()

    def test_unstartable_pool_raises_pool_unavailable(self):
        def broken_factory(workers):
            raise OSError("no processes for you")

        pool = ShardPool(2, executor_factory=broken_factory)
        instance = generate_problem_instance(
            load_dataset("iris", 30, seed=0), eta=0.2, tau=0.2, seed=0
        ).instance
        with pytest.raises(PoolUnavailable):
            pool.map_shards(parallel_module._bounds_shard, instance, 64, [])
        assert not pool.available()

    def test_closed_pool_refuses_work(self, running_example):
        pool = ShardPool(2)
        pool.close()
        with pytest.raises(PoolUnavailable):
            pool.map_shards(
                parallel_module._bounds_shard, running_example, 64, []
            )


# --------------------------------------------------------------------------- #
# engine dispatch and fallback
# --------------------------------------------------------------------------- #
class TestEngineDispatch:
    def test_engine_name_mapping(self):
        assert engine_name(identity_configuration()) == "columnar"
        assert engine_name(identity_configuration(columnar_cache=False)) == "rowwise"
        assert engine_name(identity_configuration(parallel_workers=4)) == "parallel"

    def test_workers_below_two_run_columnar(self, running_example):
        for workers in (0, 1):
            result = Affidavit(
                identity_configuration(parallel_workers=workers)
            ).explain(running_example)
            assert result.engine == "columnar"

    def test_unavailable_pool_falls_back_to_columnar(self, running_example):
        pool = ShardPool(2)
        pool.close()
        result = Affidavit(
            identity_configuration(parallel_workers=2), shard_pool=pool
        ).explain(running_example)
        assert result.engine == "columnar"

    def test_parallel_requires_columnar_cache(self):
        with pytest.raises(ValueError):
            identity_configuration(columnar_cache=False, parallel_workers=4)

    def test_broken_pool_mid_search_still_bit_identical(self, running_example,
                                                        remote_everything):
        def broken_factory(workers):
            raise OSError("fork refused")

        reference = Affidavit(identity_configuration()).explain(running_example)
        pool = ShardPool(2, executor_factory=broken_factory)
        result = Affidavit(
            identity_configuration(parallel_workers=2), shard_pool=pool
        ).explain(running_example)
        # Every phase fell back locally on the already-drawn samples — the
        # trajectory must match, and since the pool never ran anything the
        # result truthfully reports the engine it degraded to.
        assert result.engine == "columnar"
        assert not pool.available()
        _assert_bit_identical(result, reference)

    def test_resolve_config_defaults_parallel_workers(self, tmp_path):
        request = ExplainRequest(
            source_csv="a\n1\n", target_csv="a\n1\n", engine=ENGINE_PARALLEL
        )
        config = resolve_config(request)
        assert config.parallel_workers == default_parallel_workers()
        assert config.columnar_cache

    def test_resolve_config_honours_workers_override(self):
        request = ExplainRequest(
            source_csv="a\n1\n", target_csv="a\n1\n", engine=ENGINE_PARALLEL,
            overrides={"parallel_workers": 3},
        )
        assert resolve_config(request).parallel_workers == 3

    def test_workers_override_requires_parallel_engine(self):
        with pytest.raises(RequestValidationError):
            ExplainRequest(
                source_csv="a\n1\n", target_csv="a\n1\n",
                overrides={"parallel_workers": 4},
            )

    @pytest.mark.parametrize("workers", [2.9, "4", True])
    def test_non_integer_workers_rejected_not_truncated(self, workers):
        with pytest.raises(RequestValidationError):
            ExplainRequest(
                source_csv="a\n1\n", target_csv="a\n1\n",
                engine=ENGINE_PARALLEL,
                overrides={"parallel_workers": workers},
            )

    def test_non_integer_workers_rejected_on_other_engines_too(self):
        with pytest.raises(RequestValidationError):
            ExplainRequest(
                source_csv="a\n1\n", target_csv="a\n1\n",
                overrides={"parallel_workers": 4.0},
            )


# --------------------------------------------------------------------------- #
# bit-identity across engines (the dispatch matrix)
# --------------------------------------------------------------------------- #
class TestEngineMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_engines_agree_on_the_running_example(
            self, engine, running_source, running_target, tmp_path,
            shared_pool, remote_everything):
        source_path = tmp_path / "s.csv"
        target_path = tmp_path / "t.csv"
        from repro.dataio import write_csv

        write_csv(running_source, source_path)
        write_csv(running_target, target_path)
        reference = Session().explain(ExplainRequest(
            source_path=str(source_path), target_path=str(target_path),
        ))
        outcome = Session(shard_pool=shared_pool).explain(ExplainRequest(
            source_path=str(source_path), target_path=str(target_path),
            engine=engine,
            overrides={"parallel_workers": 2} if engine == ENGINE_PARALLEL else {},
        ))
        assert outcome.cost == reference.cost
        assert outcome.explanation.functions == reference.explanation.functions
        assert outcome.expansions == reference.expansions
        assert outcome.provenance.engine == engine
        # The serialized payloads must agree except for provenance/timings.
        reference_payload = reference.to_dict()
        payload = outcome.to_dict()
        for volatile in ("timings", "provenance", "request", "column_cache",
                         "idempotency_key"):
            reference_payload.pop(volatile)
            payload.pop(volatile)
        assert payload == reference_payload

    @pytest.mark.parametrize("instance_seed", [1, 2, 3])
    def test_parallel_agrees_on_generated_snapshots(self, instance_seed,
                                                    shared_pool,
                                                    remote_everything):
        table = load_dataset("flight-500k", 150 + 10 * instance_seed,
                             seed=instance_seed)
        instance = generate_problem_instance(
            table, eta=0.3, tau=0.3, seed=instance_seed
        ).instance
        reference = Affidavit(
            identity_configuration(seed=instance_seed)
        ).explain(instance)
        result = Affidavit(
            identity_configuration(seed=instance_seed, parallel_workers=2),
            shard_pool=shared_pool,
        ).explain(instance)
        assert result.engine == "parallel"
        _assert_bit_identical(result, reference)


class TestParallelProperty:
    """Hypothesis: on arbitrary generated snapshot pairs the parallel engine
    and the columnar engine return identical results (the same property the
    rowwise-vs-columnar suite pins, one engine further out)."""

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture, HealthCheck.too_slow,
        ],
    )
    @given(
        dataset=st.sampled_from(["iris", "abalone", "flight-500k"]),
        records=st.integers(min_value=60, max_value=140),
        eta=st.sampled_from([0.1, 0.3, 0.5]),
        tau=st.sampled_from([0.1, 0.3, 0.5]),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_parallel_equals_columnar(self, dataset, records, eta, tau, seed,
                                      shared_pool, remote_everything):
        table = load_dataset(dataset, records, seed=seed)
        instance = generate_problem_instance(
            table, eta=eta, tau=tau, seed=seed
        ).instance
        reference = Affidavit(identity_configuration(seed=seed)).explain(instance)
        result = Affidavit(
            identity_configuration(seed=seed, parallel_workers=2),
            shard_pool=shared_pool,
        ).explain(instance)
        _assert_bit_identical(result, reference)


# --------------------------------------------------------------------------- #
# pool lifecycle through the session
# --------------------------------------------------------------------------- #
class TestSessionPoolLifecycle:
    def test_session_close_tears_the_pool_down(self, running_source,
                                               running_target,
                                               remote_everything):
        before = set(multiprocessing.active_children())
        session = Session(config=identity_configuration(parallel_workers=2))
        outcome = session.explain_tables(
            running_source.copy(), running_target.copy()
        )
        assert outcome.provenance.engine == "parallel"
        spawned = [
            process for process in multiprocessing.active_children()
            if process not in before
        ]
        assert spawned, "the parallel run never started worker processes"
        session.close()
        leaked = [
            process for process in multiprocessing.active_children()
            if process in spawned and process.is_alive()
        ]
        assert not leaked, f"leaked worker processes: {leaked}"

    def test_closed_session_falls_back_to_columnar(self, running_source,
                                                   running_target,
                                                   remote_everything):
        session = Session(config=identity_configuration(parallel_workers=2))
        session.close()
        outcome = session.explain_tables(
            running_source.copy(), running_target.copy()
        )
        assert outcome.provenance.engine == "columnar"

    def test_session_reuses_its_pool_across_explains(self, running_source,
                                                     running_target,
                                                     remote_everything):
        with Session(config=identity_configuration(parallel_workers=2)) as session:
            session.explain_tables(running_source.copy(), running_target.copy())
            children_after_first = set(multiprocessing.active_children())
            session.explain_tables(running_source.copy(), running_target.copy())
            children_after_second = set(multiprocessing.active_children())
        assert children_after_second <= children_after_first

    def test_external_pool_is_not_closed_by_session(self, running_source,
                                                    running_target,
                                                    shared_pool,
                                                    remote_everything):
        session = Session(
            config=identity_configuration(parallel_workers=2),
            shard_pool=shared_pool,
        )
        outcome = session.explain_tables(
            running_source.copy(), running_target.copy()
        )
        assert outcome.provenance.engine == "parallel"
        session.close()
        assert shared_pool.available()


# --------------------------------------------------------------------------- #
# the service's bounded pool
# --------------------------------------------------------------------------- #
class TestJobManagerPool:
    def test_parallel_jobs_share_one_bounded_pool(self, running_source,
                                                  running_target, tmp_path,
                                                  remote_everything):
        from repro.dataio import write_csv
        from repro.service import JobManager

        write_csv(running_source, tmp_path / "s.csv")
        write_csv(running_target, tmp_path / "t.csv")
        request = ExplainRequest(
            source_path="s.csv", target_path="t.csv", engine=ENGINE_PARALLEL,
            overrides={"parallel_workers": 2}, use_cache=False,
        )
        before = set(multiprocessing.active_children())
        manager = JobManager(workers=2, search_workers=2)
        try:
            jobs = [
                manager.submit_request(request, data_root=tmp_path)
                for _ in range(2)
            ]
            assert manager.wait_all(60.0)
            for job in jobs:
                assert job.error is None
                assert job.outcome.provenance.engine == "parallel"
            spawned = [
                process for process in multiprocessing.active_children()
                if process not in before
            ]
            assert len(spawned) <= manager.search_workers
        finally:
            manager.shutdown(wait=True, cancel_pending=True)
        leaked = [
            process for process in multiprocessing.active_children()
            if process not in before and process.is_alive()
        ]
        assert not leaked

    def test_search_workers_zero_degrades_to_columnar(self, running_source,
                                                      running_target, tmp_path,
                                                      remote_everything):
        from repro.dataio import write_csv
        from repro.service import JobManager

        write_csv(running_source, tmp_path / "s.csv")
        write_csv(running_target, tmp_path / "t.csv")
        request = ExplainRequest(
            source_path="s.csv", target_path="t.csv", engine=ENGINE_PARALLEL,
        )
        with JobManager(workers=1, search_workers=0) as manager:
            job = manager.submit_request(request, data_root=tmp_path)
            assert job.wait(60.0)
            assert job.error is None
            assert job.outcome.provenance.engine == "columnar"
