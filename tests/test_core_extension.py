"""Unit tests for the state-extension machinery (Sections 4.3 and 4.4)."""

import random

import pytest

from repro.core import (
    ProblemInstance,
    SearchState,
    StateEvaluator,
    StateExpander,
    identity_configuration,
)
from repro.core.search_state import MAP_MARKER
from repro.dataio import Schema, Table
from repro.datagen.running_example import running_example_instance
from repro.functions import IDENTITY, ConstantValue, Division


def make_expander(instance, config=None):
    config = config or identity_configuration()
    evaluator = StateEvaluator(instance, alpha=config.alpha)
    rng = random.Random(config.seed)
    return StateExpander(instance, config, evaluator, rng), evaluator


@pytest.fixture
def numeric_instance():
    """Sources divided by 1000 plus one inserted target record."""
    schema = Schema(["kind", "amount"])
    source_rows = [("A", str(1000 * (i + 1))) for i in range(20)]
    target_rows = [("A", str(i + 1)) for i in range(20)] + [("B", "999")]
    return ProblemInstance(
        source=Table(schema, source_rows), target=Table(schema, target_rows)
    )


class TestBudgets:
    def test_sample_budgets_follow_the_paper(self, numeric_instance):
        expander, _ = make_expander(numeric_instance)
        assert expander.ranking_budget == 139
        # θ=0.1, ρ=0.95, ≥5 generations → k in the low nineties
        assert 80 <= expander.example_budget <= 100


class TestExpand:
    def test_expands_amount_with_division(self, numeric_instance):
        expander, evaluator = make_expander(numeric_instance)
        state = SearchState.empty(numeric_instance.schema).extend("kind", IDENTITY)
        extensions = expander.expand(state)
        assert extensions
        assigned = {
            extension.attribute: extension.state.function_for("amount")
            for extension in extensions
        }
        assert "amount" in assigned
        functions = [
            extension.state.function_for("amount")
            for extension in extensions
            if extension.attribute == "amount"
        ]
        assert any(
            function is not None and function.apply("5000") == "5"
            for function in functions
        )

    def test_extension_costs_match_evaluator(self, numeric_instance):
        expander, evaluator = make_expander(numeric_instance)
        state = SearchState.empty(numeric_instance.schema).extend("kind", IDENTITY)
        for extension in expander.expand(state):
            assert extension.cost == pytest.approx(evaluator.cost(extension.state))

    def test_end_state_is_not_expandable(self, numeric_instance):
        expander, _ = make_expander(numeric_instance)
        state = SearchState.from_functions(
            numeric_instance.schema, {"kind": IDENTITY, "amount": Division(1000)}
        )
        assert expander.expand(state) == []

    def test_map_marked_state_is_finalized(self, numeric_instance):
        expander, _ = make_expander(numeric_instance)
        state = (
            SearchState.empty(numeric_instance.schema)
            .extend("kind", IDENTITY)
            .extend("amount", MAP_MARKER)
        )
        extensions = expander.expand(state)
        assert len(extensions) == 1
        assert extensions[0].state.is_end_state

    def test_finalized_states_use_value_mappings(self, numeric_instance):
        expander, _ = make_expander(numeric_instance)
        state = (
            SearchState.empty(numeric_instance.schema)
            .extend("kind", IDENTITY)
            .extend("amount", MAP_MARKER)
        )
        final = expander.expand(state)[0].state
        function = final.function_for("amount")
        assert function.meta_name == "value_mapping"

    def test_expansion_is_deterministic_for_fixed_seed(self, numeric_instance):
        state = SearchState.empty(numeric_instance.schema).extend("kind", IDENTITY)
        first_expander, _ = make_expander(numeric_instance)
        second_expander, _ = make_expander(numeric_instance)
        first = [(e.attribute, e.state, e.cost) for e in first_expander.expand(state)]
        second = [(e.attribute, e.state, e.cost) for e in second_expander.expand(state)]
        assert first == second


class TestExtensionQuality:
    def test_running_example_extends_val_with_division(self):
        instance = running_example_instance()
        expander, _ = make_expander(instance)
        state = (
            SearchState.empty(instance.schema)
            .extend("Type", IDENTITY)
            .extend("Org", IDENTITY)
            .extend("Unit", ConstantValue("k $"))
        )
        extensions = expander.expand(state)
        functions = {
            (extension.attribute, repr(extension.state.function_for(extension.attribute)))
            for extension in extensions
        }
        assert any(attribute == "Val" for attribute, _ in functions) or any(
            attribute == "Date" for attribute, _ in functions
        )
        # whichever attribute was chosen, the induced candidates must beat a
        # greedy value map, i.e. be concise functions
        for extension in extensions:
            induced = extension.state.function_for(extension.attribute)
            assert induced.description_length <= 4

    def test_blocking_of_extension_is_remembered(self, numeric_instance):
        expander, evaluator = make_expander(numeric_instance)
        state = SearchState.empty(numeric_instance.schema).extend("kind", IDENTITY)
        extensions = expander.expand(state)
        for extension in extensions:
            if extension.blocking is not None:
                assert evaluator.blocking(extension.state) is extension.blocking
