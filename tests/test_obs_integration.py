"""Integration tests of the observability stack across the whole repo.

Covers the cross-layer claims: tracing is bit-identical-neutral on every
engine, traced outcomes round-trip through the versioned dict (including the
blocking-cache stats), shard work carries ship-vs-compute spans, ``/metrics``
serves well-formed Prometheus text while jobs are in flight, and the strict
``Timings`` parser rejects garbage payloads.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import pytest

from repro.api import (
    ExplainOutcome,
    ExplainSession,
    RequestValidationError,
)
from repro.api.outcome import Timings
from repro.core import Affidavit, ShardPool, identity_configuration
from repro.core import parallel as parallel_module
from repro.obs import NULL_TRACER, Tracer, phase_totals
from repro.service.schemas import ResultView

from tests.test_service_http import explain_body, request, wait_for_state


@pytest.fixture(scope="module")
def shared_pool():
    pool = ShardPool(2)
    yield pool
    pool.close()


@pytest.fixture
def remote_everything(monkeypatch):
    """Force every phase through the pool, however small the workload."""
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_EXAMPLES", 0)
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_RECORDS", 0)


def _assert_bit_identical(result, reference):
    assert result.cost == reference.cost
    assert result.explanation.functions == reference.explanation.functions
    assert result.explanation.n_inserted == reference.explanation.n_inserted
    assert result.explanation.n_deleted == reference.explanation.n_deleted
    assert result.end_state == reference.end_state
    assert result.expansions == reference.expansions
    assert result.generated_states == reference.generated_states


# --------------------------------------------------------------------- #
# tracing is trajectory-neutral on every engine
# --------------------------------------------------------------------- #
ENGINE_CONFIGS = {
    "rowwise": dict(columnar_cache=False),
    "columnar": dict(),
    "columnar-no-codes": dict(blocking_codes=False),
    "parallel": dict(parallel_workers=2),
}


@pytest.mark.parametrize("engine", sorted(ENGINE_CONFIGS))
def test_tracing_is_bit_identical_on_every_engine(
        engine, generated_iris, shared_pool, remote_everything):
    overrides = ENGINE_CONFIGS[engine]
    config = identity_configuration(max_expansions=60, **overrides)
    pool = shared_pool if engine == "parallel" else None
    instance = generated_iris.instance

    untraced = Affidavit(config, shard_pool=pool).explain(instance)
    tracer = Tracer()
    traced = Affidavit(config, shard_pool=pool, tracer=tracer).explain(instance)

    _assert_bit_identical(traced, untraced)
    (root,) = tracer.roots()
    names = {span.name for span in root.walk()}
    assert root.name == "search"
    assert {"induction", "ranking"} <= names
    assert root.counter_values["expansions"] == traced.expansions


def test_parallel_trace_records_ship_vs_compute(
        generated_iris, shared_pool, remote_everything):
    config = identity_configuration(max_expansions=40, parallel_workers=2)
    tracer = Tracer()
    Affidavit(config, shard_pool=shared_pool, tracer=tracer).explain(
        generated_iris.instance)

    (root,) = tracer.roots()
    shards = [span for span in root.walk() if span.name == "shard"]
    assert shards, "no shard spans recorded on a forced-remote parallel run"
    for span in shards:
        counters = span.counter_values
        assert {"shard", "compute_seconds", "ship_seconds"} <= set(counters)
        assert counters["compute_seconds"] >= 0.0
        assert counters["ship_seconds"] >= 0.0
        # The shard's wall time is the sum of the two components.
        assert span.duration == pytest.approx(
            counters["compute_seconds"] + counters["ship_seconds"], abs=1e-6)


def test_shard_metrics_accumulate_in_the_registry(
        generated_iris, shared_pool, remote_everything):
    from repro.obs import get_registry

    tasks = get_registry().get("repro_shard_tasks_total")
    before = sum(tasks.series().values())
    config = identity_configuration(max_expansions=40, parallel_workers=2)
    Affidavit(config, shard_pool=shared_pool).explain(generated_iris.instance)
    assert sum(tasks.series().values()) > before


# --------------------------------------------------------------------- #
# session-level tracing and outcome round-trips
# --------------------------------------------------------------------- #
class TestSessionTracing:
    def test_traced_outcome_carries_trace_and_phase_timings(self, generated_iris):
        tracer = Tracer()
        session = ExplainSession(
            config=identity_configuration(max_expansions=60)
        ).with_tracer(tracer)
        outcome = session.explain_instance(generated_iris.instance)

        assert outcome.trace is not None
        assert outcome.trace.name == "explain"
        names = {span.name for span in outcome.trace.walk()}
        assert "search" in names
        assert outcome.timings.phases
        assert dict(outcome.timings.phases) == phase_totals(outcome.trace)
        assert outcome.timings.phase_seconds["search"] > 0.0

    def test_untraced_outcome_has_no_trace(self, generated_iris):
        session = ExplainSession(config=identity_configuration(max_expansions=60))
        outcome = session.explain_instance(generated_iris.instance)
        assert outcome.trace is None
        assert outcome.timings.phases == ()

    def test_with_tracer_none_reverts_to_noop(self, generated_iris):
        session = ExplainSession(
            config=identity_configuration(max_expansions=60)
        ).with_tracer(Tracer()).with_tracer(None)
        outcome = session.explain_instance(generated_iris.instance)
        assert outcome.trace is None

    def test_traced_outcome_round_trips_through_json(self, generated_iris):
        session = ExplainSession(
            config=identity_configuration(max_expansions=60)
        ).with_tracer(Tracer())
        outcome = session.explain_instance(generated_iris.instance)
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert ExplainOutcome.from_dict(payload) == outcome

    def test_blocking_cache_stats_round_trip(self, generated_iris):
        session = ExplainSession(config=identity_configuration(max_expansions=60))
        outcome = session.explain_instance(generated_iris.instance)
        stats = outcome.blocking_cache
        assert stats is not None
        assert {"hits", "misses", "entries", "max_entries"} <= set(stats)
        assert stats["hits"] + stats["misses"] > 0
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert ExplainOutcome.from_dict(payload).blocking_cache == stats
        assert "blocking cache" in outcome.summary()

    def test_invalid_trace_payload_rejected(self, generated_iris):
        session = ExplainSession(config=identity_configuration(max_expansions=60))
        outcome = session.explain_instance(generated_iris.instance)
        payload = outcome.to_dict()
        payload["trace"] = {"name": "", "duration": 1.0}
        with pytest.raises(RequestValidationError):
            ExplainOutcome.from_dict(payload)


class TestTimingsStrictness:
    def _payload(self, **overrides):
        payload = {"load_seconds": 0.1, "search_seconds": 0.9, "total_seconds": 1.0}
        payload.update(overrides)
        return payload

    def test_round_trip_with_phases(self):
        timings = Timings(load_seconds=0.1, search_seconds=0.9, total_seconds=1.0,
                          phases=(("induction", 0.4), ("ranking", 0.2)))
        assert Timings.from_dict(timings.to_dict()) == timings
        assert timings.phase_seconds == {"induction": 0.4, "ranking": 0.2}

    @pytest.mark.parametrize("payload", [
        None,
        "fast",
        {},
        {"load_seconds": 0.1, "search_seconds": 0.9},  # missing total
    ])
    def test_missing_or_nonmapping_payloads_rejected(self, payload):
        with pytest.raises(RequestValidationError):
            Timings.from_dict(payload)

    @pytest.mark.parametrize("bad", [
        "quick", None, True, float("nan"), float("inf"), -0.5,
    ])
    def test_garbage_seconds_rejected(self, bad):
        with pytest.raises(RequestValidationError):
            Timings.from_dict(self._payload(search_seconds=bad))

    @pytest.mark.parametrize("phases", [
        ["not", "a", "mapping"],
        {"induction": "slow"},
        {"induction": float("nan")},
        {"induction": -1.0},
    ])
    def test_garbage_phases_rejected(self, phases):
        with pytest.raises(RequestValidationError):
            Timings.from_dict(self._payload(phases=phases))


# --------------------------------------------------------------------- #
# the service: /metrics under load, blocking cache in the result view
# --------------------------------------------------------------------- #
@pytest.fixture
def server():
    from repro.service import create_server

    instance = create_server(workers=4)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown_service()
    thread.join(timeout=10.0)


@pytest.fixture
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


# Label values may themselves contain braces (route templates like
# ``/v1/jobs/{id}``), so the label block matches greedily to the last ``}``.
SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \S+$")


def _scrape(base_url):
    with urllib.request.urlopen(base_url + "/metrics", timeout=30.0) as response:
        assert response.status == 200
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain; version=0.0.4")
        return response.read().decode("utf-8")


def _assert_well_formed(body):
    assert body.endswith("\n")
    for line in body.splitlines():
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line), line
        else:
            assert SAMPLE_RE.match(line), line


def test_metrics_endpoint_during_active_jobs(base_url):
    # Submit a batch of distinct jobs, then scrape concurrently while the
    # four workers chew through them.
    job_ids = []
    for divisor in (211, 223, 227, 229):
        status, view = request(base_url, "POST", "/v1/explain", explain_body(divisor))
        assert status in (200, 202)
        job_ids.append(view["id"])

    bodies = [None] * 4
    errors = []

    def scrape(slot):
        try:
            bodies[slot] = _scrape(base_url)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=scrape, args=(slot,)) for slot in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for body in bodies:
        _assert_well_formed(body)

    for job_id in job_ids:
        wait_for_state(base_url, job_id, {"done"})

    final = _scrape(base_url)
    _assert_well_formed(final)
    lines = final.splitlines()
    submitted = next(line for line in lines
                     if line.startswith("repro_jobs_submitted_total "))
    assert float(submitted.split()[-1]) >= len(job_ids)
    completed = [line for line in lines
                 if line.startswith("repro_jobs_completed_total{")]
    assert any('state="done"' in line for line in completed)
    assert any(line.startswith("repro_jobs_queue_depth ") for line in lines)
    assert any(line.startswith("repro_job_latency_seconds_bucket{") for line in lines)
    assert any(line.startswith('repro_http_requests_total{method="GET",route="/metrics"')
               for line in lines)


def test_result_view_carries_blocking_cache(base_url):
    status, view = request(base_url, "POST", "/v1/explain", explain_body(233))
    assert status in (200, 202)
    wait_for_state(base_url, view["id"], {"done"})
    status, result = request(base_url, "GET", f"/v1/jobs/{view['id']}/result")
    assert status == 200
    stats = result["blocking_cache"]
    assert stats is not None
    assert {"hits", "misses", "entries", "max_entries"} <= set(stats)


def test_result_view_dataclass_mirrors_the_wire_shape():
    # A library-level sanity check that ResultView.to_dict keys stay in sync
    # with what the HTTP test above asserted.
    fields = set(ResultView.__dataclass_fields__)
    assert "blocking_cache" in fields


def test_null_tracer_is_process_default():
    # The engine default must be the shared no-op tracer (not a fresh one).
    affidavit = Affidavit(identity_configuration(max_expansions=10))
    assert affidavit._tracer is NULL_TRACER
