"""Tests of the session facade, outcomes and the streaming event surface."""

import json

import pytest

import repro
from repro.api import (
    ExplainOutcome,
    ExplainRequest,
    ExplainSession,
    RequestValidationError,
    SCHEMA_VERSION,
    SearchCompleted,
    SearchProgressed,
    SearchStarted,
    Session,
    UnsupportedSchemaVersion,
)
from repro.core import identity_configuration
from repro.dataio import Schema, Table, write_csv


def division_tables(divisor=100, rows=8):
    schema = Schema(("id", "val"))
    source = Table(schema, [(str(i), str(i * 7 * divisor)) for i in range(1, rows + 1)])
    target = Table(schema, [(str(i), str(i * 7)) for i in range(1, rows + 1)])
    return source, target


def division_request(divisor=100, **kwargs):
    source, target = division_tables(divisor)
    return ExplainRequest.inline(source, target, name=f"div{divisor}", **kwargs)


class TestExplain:
    def test_inline_request_end_to_end(self):
        outcome = Session().explain(division_request())
        assert outcome.cost <= outcome.trivial_cost
        function = outcome.explanation.functions["val"]
        assert function.meta_name == "division"
        assert outcome.result is not None
        assert outcome.instance is not None and outcome.instance.name == "div100"
        assert outcome.idempotency_key is not None
        assert outcome.timings.total_seconds >= outcome.timings.search_seconds

    def test_path_request_with_data_root(self, tmp_path):
        source, target = division_tables()
        write_csv(source, tmp_path / "s.csv")
        write_csv(target, tmp_path / "t.csv")
        outcome = (
            Session()
            .with_data_root(tmp_path)
            .explain(ExplainRequest(source_path="s.csv", target_path="t.csv"))
        )
        assert outcome.explanation.functions["val"].meta_name == "division"

    def test_path_escape_is_rejected(self, tmp_path):
        request = ExplainRequest(source_path="../s.csv", target_path="t.csv")
        with pytest.raises(RequestValidationError, match="escapes"):
            Session().with_data_root(tmp_path).explain(request)

    def test_request_functions_subset_limits_the_pool(self):
        outcome = Session().explain(
            division_request(functions=("identity", "division"))
        )
        assert outcome.provenance.registry == ("identity", "division")
        assert outcome.explanation.functions["val"].meta_name == "division"

    def test_with_functions_builder_limits_the_pool(self):
        outcome = (
            Session()
            .with_functions("identity", "division")
            .explain(division_request())
        )
        assert outcome.provenance.registry == ("identity", "division")

    def test_unknown_function_name_is_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown meta functions"):
            Session().with_functions("warp")
        with pytest.raises(RequestValidationError, match="unknown meta functions"):
            Session().explain(division_request(functions=("warp",)))

    def test_rowwise_engine_matches_columnar(self):
        columnar = Session().explain(division_request())
        rowwise = Session().explain(division_request(engine="rowwise"))
        assert columnar.provenance.engine == "columnar"
        assert rowwise.provenance.engine == "rowwise"
        assert rowwise.explanation == columnar.explanation
        assert rowwise.cost == columnar.cost

    def test_pinned_session_config_is_authoritative(self):
        config = identity_configuration(seed=5, columnar_cache=False)
        outcome = Session(config=config).explain(
            division_request(overrides={"seed": 1})
        )
        assert outcome.result.config.seed == 5
        assert outcome.provenance.engine == "rowwise"

    def test_with_config_accepts_names_and_overrides(self):
        session = Session().with_config("hs", seed=3)
        config = session.resolve_config()
        assert config.start_strategy == "overlap" and config.seed == 3
        with pytest.raises(RequestValidationError, match="unknown config"):
            Session().with_config("warp-drive")

    def test_explain_tables_convenience(self):
        source, target = division_tables()
        outcome = Session().explain_tables(source, target, name="direct")
        assert outcome.explanation.functions["val"].meta_name == "division"
        assert outcome.provenance.instance_name == "direct"
        assert outcome.request is None and outcome.idempotency_key is None

    def test_progress_and_cancellation_hooks(self):
        seen = []
        outcome = (
            Session()
            .with_progress(seen.append)
            .explain(division_request())
        )
        assert seen and seen[-1].expansions == outcome.expansions

        cancelled = (
            Session()
            .with_cancellation(lambda: True)
            .explain(division_request())
        )
        assert cancelled.cancelled is True


class TestExplainIter:
    def test_event_stream_shape(self):
        events = list(Session().explain_iter(division_request()))
        kinds = [event.kind for event in events]
        assert kinds[0] == "started" and kinds[-1] == "completed"
        assert set(kinds[1:-1]) == {"progressed"}

        started = events[0]
        assert isinstance(started, SearchStarted)
        assert started.n_source_records == 8 and started.engine == "columnar"

        progressed = [e for e in events if isinstance(e, SearchProgressed)]
        assert progressed[-1].expansions >= 1

        completed = events[-1]
        assert isinstance(completed, SearchCompleted)
        assert completed.outcome.explanation.functions["val"].meta_name == "division"
        assert completed.outcome.expansions == progressed[-1].expansions

    def test_events_serialize(self):
        for event in Session().explain_iter(division_request()):
            payload = json.loads(json.dumps(event.to_dict()))
            assert payload["kind"] == event.kind

    def test_closing_the_stream_cancels_the_search(self):
        stream = Session().explain_iter(division_request())
        assert next(stream).kind == "started"
        stream.close()  # must not hang; the worker stops within one expansion

    def test_load_errors_surface_in_the_caller(self):
        request = ExplainRequest(source_path="missing-a.csv",
                                 target_path="missing-b.csv")
        with pytest.raises(RequestValidationError):
            next(Session().explain_iter(request))


class TestOutcomeSerialization:
    def test_round_trip_is_identity(self):
        outcome = Session().explain(division_request(functions=("identity", "division")))
        rebuilt = ExplainOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
        assert rebuilt == outcome
        assert rebuilt.result is None and rebuilt.instance is None
        assert rebuilt.request == outcome.request
        assert rebuilt.provenance.api_version == SCHEMA_VERSION

    def test_unknown_outcome_schema_version_is_rejected(self):
        payload = Session().explain(division_request()).to_dict()
        payload["schema_version"] = "affidavit.outcome/v99"
        with pytest.raises(UnsupportedSchemaVersion):
            ExplainOutcome.from_dict(payload)

    def test_engine_round_trips_verbatim(self):
        payload = Session().explain(division_request(engine="rowwise")).to_dict()
        rebuilt = ExplainOutcome.from_dict(payload)
        assert rebuilt.provenance.engine == "rowwise"

    def test_unknown_provenance_engine_is_rejected(self):
        payload = Session().explain(division_request()).to_dict()
        payload["provenance"]["engine"] = "quantum"
        with pytest.raises(RequestValidationError):
            ExplainOutcome.from_dict(payload)

    def test_missing_provenance_engine_is_rejected(self):
        # Pre-fix builds defaulted a missing engine to "columnar", silently
        # mislabelling provenance; the wire format always writes it, so a
        # payload without it is malformed, not legacy.
        payload = Session().explain(division_request()).to_dict()
        del payload["provenance"]["engine"]
        with pytest.raises(RequestValidationError):
            ExplainOutcome.from_dict(payload)

    def test_summary_mentions_engine_and_cost(self):
        outcome = Session().explain(division_request())
        summary = outcome.summary()
        assert "engine" in summary and "columnar" in summary
        assert "cost" in summary


class TestDeprecatedShim:
    def test_explain_snapshots_warns_but_works(self):
        source, target = division_tables()
        with pytest.warns(DeprecationWarning, match="ExplainSession"):
            result = repro.explain_snapshots(source, target)
        assert result.explanation.functions["val"].meta_name == "division"

    def test_core_explain_snapshots_stays_quiet(self):
        import warnings

        from repro.core import explain_snapshots as core_explain_snapshots

        source, target = division_tables()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = core_explain_snapshots(source, target)
        assert result.explanation.functions["val"].meta_name == "division"

    def test_session_alias_exported_at_top_level(self):
        assert repro.Session is ExplainSession
        assert repro.ExplainRequest is ExplainRequest
