"""Tests of the canonical request type (repro.api.ExplainRequest)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    BASE_CONFIGS,
    ExplainBudget,
    ExplainRequest,
    RequestValidationError,
    SCHEMA_VERSION,
    SCHEMA_VERSION_V2,
    TIERS,
    UnsupportedSchemaVersion,
    resolve_config,
    resolve_registry,
)
from repro.core import AffidavitConfig
from repro.functions import default_registry

SOURCE_CSV = "id,val\n1,100\n2,200\n"
TARGET_CSV = "id,val\n1,1\n2,2\n"


def inline_request(**kwargs):
    return ExplainRequest(source_csv=SOURCE_CSV, target_csv=TARGET_CSV, **kwargs)


# --------------------------------------------------------------------- #
# construction and validation
# --------------------------------------------------------------------- #
class TestValidation:
    def test_minimal_inline_request(self):
        request = inline_request()
        assert request.config == "hid"
        assert request.engine == "columnar"

    def test_needs_some_snapshots(self):
        with pytest.raises(RequestValidationError, match="no snapshots"):
            ExplainRequest()

    def test_rejects_mixed_transports(self):
        with pytest.raises(RequestValidationError, match="not both"):
            ExplainRequest(source_csv=SOURCE_CSV, target_csv=TARGET_CSV,
                           source_path="a.csv", target_path="b.csv")

    def test_rejects_half_inline(self):
        with pytest.raises(RequestValidationError):
            ExplainRequest(source_csv=SOURCE_CSV)

    def test_rejects_unknown_config(self):
        with pytest.raises(RequestValidationError, match="unknown config"):
            inline_request(config="bogus")

    def test_rejects_unknown_engine(self):
        with pytest.raises(RequestValidationError, match="unknown engine"):
            inline_request(engine="gpu")

    def test_rejects_unknown_override_names(self):
        with pytest.raises(RequestValidationError, match="unknown config overrides"):
            inline_request(overrides={"gamma": 1})

    def test_rejects_empty_or_duplicate_functions(self):
        with pytest.raises(RequestValidationError, match="functions"):
            inline_request(functions=())
        with pytest.raises(RequestValidationError, match="repeat"):
            inline_request(functions=("identity", "identity"))

    def test_rejects_bad_delimiter_and_throttle(self):
        with pytest.raises(RequestValidationError, match="delimiter"):
            inline_request(delimiter=";;")
        with pytest.raises(RequestValidationError, match="throttle_seconds"):
            inline_request(throttle_seconds="soon")
        with pytest.raises(RequestValidationError, match="throttle_seconds"):
            inline_request(throttle_seconds=-1)

    @pytest.mark.parametrize("overrides", [
        {"alpha": 7.0},
        {"alpha": -0.1},
        {"beta": 0},
        {"queue_width": 0},
        {"theta": 0.0},
        {"theta": 1.5},
        {"confidence": 1.0},
        {"start_strategy": "sideways"},
        {"max_block_size": 0},
        {"column_cache_entries": 0},
    ])
    def test_out_of_range_search_parameters_fail_at_construction(self, overrides):
        # AffidavitConfig.validate() runs during request construction, so
        # wire-format overrides cannot smuggle in an invalid configuration.
        with pytest.raises(ValueError):
            inline_request(overrides=overrides)


class TestConfigValidate:
    def test_validate_passes_on_legal_config(self):
        AffidavitConfig().validate()

    @pytest.mark.parametrize("field, value, match", [
        ("alpha", 1.5, "alpha must be in"),
        ("beta", 0, "beta must be >="),
        ("queue_width", 0, "queue_width must be >="),
        ("theta", 2.0, "theta must be in"),
        ("confidence", 0.0, "confidence must be in"),
        ("start_strategy", "diagonal", "start_strategy must be one of"),
    ])
    def test_constructor_rejects_out_of_range(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            AffidavitConfig(**{field: value})


# --------------------------------------------------------------------- #
# resolution
# --------------------------------------------------------------------- #
class TestResolution:
    def test_engine_selects_columnar_cache(self):
        assert resolve_config(inline_request(engine="columnar")).columnar_cache is True
        assert resolve_config(inline_request(engine="rowwise")).columnar_cache is False

    def test_explicit_columnar_cache_override_wins(self):
        request = inline_request(engine="columnar",
                                 overrides={"columnar_cache": False})
        assert resolve_config(request).columnar_cache is False

    def test_base_config_and_overrides(self):
        request = inline_request(config="hs", overrides={"seed": 9, "beta": 3})
        config = resolve_config(request)
        assert config.start_strategy == "overlap"
        assert config.seed == 9 and config.beta == 3

    def test_registry_subset(self):
        request = inline_request(functions=("identity", "division"))
        registry = resolve_registry(request)
        assert registry.names == ["identity", "division"]

    def test_unknown_function_names_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown meta functions"):
            resolve_registry(inline_request(functions=("identity", "teleport")))

    def test_no_subset_keeps_full_pool(self):
        assert resolve_registry(inline_request()).names == default_registry().names


# --------------------------------------------------------------------- #
# serialization round-trips
# --------------------------------------------------------------------- #
_names = sorted(default_registry().names)

_override_values = {
    "alpha": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    "beta": st.integers(min_value=1, max_value=4),
    "queue_width": st.integers(min_value=1, max_value=8),
    "theta": st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    "seed": st.integers(min_value=0, max_value=2**31),
    "max_expansions": st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
    "columnar_cache": st.booleans(),
}

request_strategy = st.builds(
    inline_request,
    config=st.sampled_from(sorted(BASE_CONFIGS)),
    overrides=st.dictionaries(
        st.sampled_from(sorted(_override_values)), st.none(), max_size=4
    ).flatmap(
        lambda keys: st.fixed_dictionaries(
            {key: _override_values[key] for key in keys}
        )
    ),
    functions=st.one_of(
        st.none(),
        st.lists(st.sampled_from(_names), min_size=1, max_size=5, unique=True),
    ),
    engine=st.sampled_from(("columnar", "rowwise")),
    name=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
    ),
    throttle_seconds=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    use_cache=st.booleans(),
)


class TestSerialization:
    @settings(max_examples=60, deadline=None)
    @given(request=request_strategy)
    def test_dict_round_trip_is_identity(self, request):
        assert ExplainRequest.from_dict(request.to_dict()) == request

    @settings(max_examples=60, deadline=None)
    @given(request=request_strategy)
    def test_json_round_trip_is_identity(self, request):
        payload = json.loads(json.dumps(request.to_dict()))
        assert ExplainRequest.from_dict(payload) == request

    def test_to_dict_carries_schema_version(self):
        assert inline_request().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_missing_schema_version_is_accepted(self):
        payload = inline_request().to_dict()
        del payload["schema_version"]
        assert ExplainRequest.from_dict(payload) == inline_request()

    def test_unknown_schema_version_is_rejected(self):
        payload = inline_request().to_dict()
        payload["schema_version"] = "affidavit.request/v99"
        with pytest.raises(UnsupportedSchemaVersion, match="v99"):
            ExplainRequest.from_dict(payload)
        # ... and the rejection is catchable as a plain validation error.
        with pytest.raises(RequestValidationError):
            ExplainRequest.from_dict(payload)

    def test_unknown_fields_are_rejected(self):
        payload = inline_request().to_dict()
        payload["surprise"] = 1
        with pytest.raises(RequestValidationError, match="surprise"):
            ExplainRequest.from_dict(payload)


# --------------------------------------------------------------------- #
# the v2 wire format (budget + strategy)
# --------------------------------------------------------------------- #
_budget_strategy = st.builds(
    ExplainBudget,
    deadline_ms=st.one_of(
        st.none(), st.floats(min_value=0.01, max_value=1e6, allow_nan=False)
    ),
    max_compression_ratio=st.one_of(
        st.none(), st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
    ),
)

_strategy_strategy = st.one_of(
    st.none(),
    st.lists(st.sampled_from(TIERS), min_size=1, max_size=len(TIERS),
             unique=True).map(tuple),
)

v2_request_strategy = st.builds(
    inline_request,
    config=st.sampled_from(sorted(BASE_CONFIGS)),
    engine=st.sampled_from(("columnar", "rowwise")),
    budget=st.one_of(st.none(), _budget_strategy),
    strategy=_strategy_strategy,
    use_cache=st.booleans(),
)


class TestV2Serialization:
    @settings(max_examples=60, deadline=None)
    @given(request=v2_request_strategy)
    def test_dict_round_trip_is_identity_for_both_versions(self, request):
        # Plain requests round-trip through the v1 tag, budgeted/strategied
        # ones through v2 — either way from_dict(to_dict(r)) == r.
        payload = json.loads(json.dumps(request.to_dict()))
        assert payload["schema_version"] == request.schema_version
        assert ExplainRequest.from_dict(payload) == request

    def test_plain_request_serializes_at_v1(self):
        payload = inline_request().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "budget" not in payload and "strategy" not in payload

    def test_budget_or_strategy_forces_v2(self):
        assert inline_request(budget=50).to_dict()["schema_version"] == SCHEMA_VERSION_V2
        assert (
            inline_request(strategy=("full",)).to_dict()["schema_version"]
            == SCHEMA_VERSION_V2
        )

    def test_v1_payload_must_not_smuggle_v2_fields(self):
        payload = inline_request().to_dict()
        payload["budget"] = 50
        with pytest.raises(RequestValidationError, match="require schema_version"):
            ExplainRequest.from_dict(payload)

    def test_bare_number_budget_is_coerced(self):
        request = inline_request(budget=50)
        assert request.budget == ExplainBudget(deadline_ms=50.0)

    def test_bad_budget_and_strategy_are_rejected(self):
        with pytest.raises(RequestValidationError, match="budget"):
            inline_request(budget=True)
        with pytest.raises(RequestValidationError, match="budget"):
            inline_request(budget=-5)
        with pytest.raises(RequestValidationError, match="strategy"):
            inline_request(strategy=())
        with pytest.raises(RequestValidationError, match="unknown strategy"):
            inline_request(strategy=("warp",))

    def test_v1_equivalent_request_keeps_its_canonical_key(self):
        # The serialize-at-lowest-version rule: a request using no v2
        # feature must hash exactly as it did before the v2 fields existed
        # (its canonical dict carries no budget/strategy keys at all).
        canonical = inline_request().canonical_dict()
        assert "budget" not in canonical and "strategy" not in canonical

    def test_budget_and_strategy_are_result_determining(self):
        base = inline_request().canonical_key()
        assert inline_request(budget=50).canonical_key() != base
        assert inline_request(strategy=("greedy",)).canonical_key() != base


# --------------------------------------------------------------------- #
# canonical identity (idempotency-key base)
# --------------------------------------------------------------------- #
class TestCanonicalKey:
    def test_stable_across_dict_key_order(self):
        payload = inline_request(overrides={"seed": 3, "beta": 2}).to_dict()
        shuffled = dict(reversed(list(payload.items())))
        shuffled["overrides"] = dict(reversed(list(payload["overrides"].items())))
        first = ExplainRequest.from_dict(payload)
        second = ExplainRequest.from_dict(shuffled)
        assert first == second
        assert first.canonical_key() == second.canonical_key()

    def test_execution_hints_do_not_change_the_key(self):
        base = inline_request().canonical_key()
        assert inline_request(name="other").canonical_key() == base
        assert inline_request(use_cache=False).canonical_key() == base
        assert inline_request(throttle_seconds=2.0).canonical_key() == base

    @pytest.mark.parametrize("kwargs", [
        {"overrides": {"seed": 99}},
        {"config": "hs"},
        {"engine": "rowwise"},
        {"functions": ("identity", "division")},
    ])
    def test_result_determining_fields_change_the_key(self, kwargs):
        assert inline_request(**kwargs).canonical_key() != inline_request().canonical_key()

    def test_snapshot_content_changes_the_key(self):
        changed = ExplainRequest(source_csv=SOURCE_CSV,
                                 target_csv=TARGET_CSV + "3,3\n")
        assert changed.canonical_key() != inline_request().canonical_key()

    @settings(max_examples=40, deadline=None)
    @given(request=request_strategy)
    def test_key_survives_serialization(self, request):
        rebuilt = ExplainRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt.canonical_key() == request.canonical_key()


class TestWireLeniency:
    def test_override_pairs_with_unorderable_values_fail_cleanly(self):
        # Duplicate keys with unorderable values must become a validation
        # error (HTTP 400), not a TypeError from sorting (HTTP 500).
        payload = inline_request().to_dict()
        payload["overrides"] = [["seed", 1], ["seed", {}]]
        with pytest.raises(RequestValidationError):
            ExplainRequest.from_dict(payload)

    def test_numeric_string_throttle_is_coerced(self):
        request = inline_request(throttle_seconds="0.5")
        assert request.throttle_seconds == 0.5
