"""Unit tests for repro.dataio.buffers: the binary columnar store."""

import pickle

import pytest

from repro.core import ProblemInstance
from repro.dataio import (
    BufferColumn,
    BufferFormatError,
    Column,
    ColumnBuffer,
    Schema,
    Table,
    TableError,
    ValueBlob,
    buffer_table,
    content_digest,
    open_snapshot_pair,
    pack_tables,
    unpack_tables,
    write_snapshot_pair,
)


@pytest.fixture
def schema():
    return Schema(["id", "name", "value"])


@pytest.fixture
def table(schema):
    return Table(schema, [
        ("1", "alpha", "10"),
        ("2", "beta", "20"),
        ("3", "alpha", "30"),
        ("4", "alpha", "10"),
    ])


@pytest.fixture
def pair(schema):
    source = Table(schema, [("1", "a", "10"), ("2", "b", "20"), ("3", "a", "30")])
    target = Table(schema, [("1", "a", "1.0"), ("2", "b", "2.0")])
    return source, target


class TestValueBlob:
    def test_round_trip(self):
        blob = ValueBlob.from_values(["alpha", "", "βγ", "b"])
        assert len(blob) == 4
        assert blob.values() == ["alpha", "", "βγ", "b"]
        assert blob.value(2) == "βγ"

    def test_empty(self):
        blob = ValueBlob.from_values([])
        blob.validate()
        assert len(blob) == 0
        assert blob.values() == []

    def test_out_of_range_index(self):
        blob = ValueBlob.from_values(["a"])
        with pytest.raises(BufferFormatError):
            blob.value(1)
        with pytest.raises(BufferFormatError):
            blob.value(-1)

    def test_validate_rejects_decreasing_offsets(self):
        blob = ValueBlob([0, 2, 1], b"ab")
        with pytest.raises(BufferFormatError):
            blob.validate()

    def test_validate_rejects_bad_terminal_offset(self):
        blob = ValueBlob([0, 1], b"abc")
        with pytest.raises(BufferFormatError):
            blob.validate()

    def test_validate_rejects_empty_offsets(self):
        with pytest.raises(BufferFormatError):
            ValueBlob([], b"").validate()

    def test_invalid_utf8_is_a_format_error(self):
        blob = ValueBlob([0, 2], b"\xff\xfe")
        with pytest.raises(BufferFormatError):
            blob.value(0)


class TestColumnBuffer:
    def test_from_column_round_trip(self):
        column = Column(["x", "y", "x", "z"])
        buffer = ColumnBuffer.from_column(column)
        assert buffer.n_rows == 4
        assert buffer.n_values == 3
        assert buffer.decode() == ["x", "y", "x", "z"]
        assert buffer.codebook() == {"x": 0, "y": 1, "z": 2}

    def test_contains_and_histogram_without_decoding_cells(self):
        buffer = ColumnBuffer.from_column(Column(["a", "b", "a"]))
        assert buffer.contains("a")
        assert not buffer.contains("missing")
        assert buffer.value_histogram() == {"a": 2, "b": 1}

    def test_out_of_range_code_rejected(self):
        buffer = ColumnBuffer([0, 5], ValueBlob.from_values(["only"]))
        with pytest.raises(BufferFormatError):
            buffer.validate()

    def test_negative_code_rejected(self):
        buffer = ColumnBuffer([-1], ValueBlob.from_values(["only"]))
        with pytest.raises(BufferFormatError):
            buffer.decode()

    def test_non_injective_codebook_rejected(self):
        buffer = ColumnBuffer([0, 1], ValueBlob.from_values(["dup", "dup"]))
        with pytest.raises(BufferFormatError):
            buffer.codebook()

    def test_from_buffer_column_reuses_buffer(self):
        buffer = ColumnBuffer.from_column(Column(["a", "b"]))
        wrapped = BufferColumn(buffer)
        assert ColumnBuffer.from_column(wrapped) is buffer


class TestBufferColumn:
    def _column(self, cells=("a", "b", "a", "c")):
        return BufferColumn(ColumnBuffer.from_column(Column(list(cells))))

    def test_stats_queries_stay_lazy(self):
        column = self._column()
        assert len(column) == 4
        assert "b" in column
        assert "missing" not in column
        assert column.value_counts() == {"a": 2, "b": 1, "c": 1}
        codes, codebook = column.dictionary()
        assert list(codes) == [0, 1, 0, 2]
        assert codebook == {"a": 0, "b": 1, "c": 2}
        assert not column.materialised

    def test_positional_access_materialises(self):
        column = self._column()
        assert column[1] == "b"
        assert column.materialised
        assert list(column) == ["a", "b", "a", "c"]

    def test_equality_both_directions(self):
        plain = Column(["a", "b", "a", "c"])
        assert self._column() == plain
        assert plain == self._column()
        assert self._column() == ["a", "b", "a", "c"]
        assert self._column() != ["a", "b"]

    def test_non_string_membership_is_false_while_lazy(self):
        assert 42 not in self._column()

    def test_mutation_detaches_the_buffer(self):
        column = self._column()
        column.append("d")
        assert column.buffer is None
        assert list(column) == ["a", "b", "a", "c", "d"]
        assert column.value_counts()["d"] == 1

    def test_pickle_flattens_to_plain_column(self):
        clone = pickle.loads(pickle.dumps(self._column()))
        assert type(clone) is Column
        assert list(clone) == ["a", "b", "a", "c"]

    def test_stats_agree_with_plain_column(self):
        cells = ["10", "20", "10", "x", ""]
        lazy, plain = self._column(cells), Column(cells)
        assert lazy.kind == plain.kind
        assert lazy.distinct_count() == plain.distinct_count()
        assert lazy.missing_count() == plain.missing_count()
        assert lazy.numeric_count() == plain.numeric_count()


class TestBufferTable:
    def test_buffer_table_preserves_contents(self, table):
        clone = buffer_table(table)
        assert clone.n_rows == table.n_rows
        assert list(clone.schema) == list(table.schema)
        for attribute in table.schema:
            assert list(clone.column_view(attribute)) == \
                list(table.column_view(attribute))

    def test_buffer_table_is_frozen(self, table):
        clone = buffer_table(table)
        with pytest.raises(TableError):
            clone.append(("9", "z", "90"))


class TestContainer:
    def test_pack_unpack_round_trip(self, pair):
        source, target = pair
        blob = pack_tables([source, target], extra=b"\x01\x02", name="demo")
        tables, extra, name = unpack_tables(blob)
        assert extra == b"\x01\x02"
        assert name == "demo"
        assert len(tables) == 2
        for original, unpacked in zip(pair, tables):
            assert unpacked.n_rows == original.n_rows
            for attribute in original.schema:
                assert list(unpacked.column_view(attribute)) == \
                    list(original.column_view(attribute))

    def test_unpacked_columns_are_lazy(self, pair):
        tables, _extra, _name = unpack_tables(pack_tables(list(pair)))
        column = tables[0].column_view("name")
        assert isinstance(column, BufferColumn)
        assert not column.materialised
        assert len(column) == 3

    def test_pack_is_deterministic(self, pair):
        assert pack_tables(list(pair)) == pack_tables(list(pair))

    def test_empty_tables(self, schema):
        empty = Table(schema)
        tables, _extra, _name = unpack_tables(pack_tables([empty]))
        assert tables[0].n_rows == 0
        assert list(tables[0].column_view("id")) == []

    @pytest.mark.parametrize("mutate", [
        lambda blob: b"",
        lambda blob: blob[:4],
        lambda blob: b"XX" + blob[2:],                       # bad magic
        lambda blob: blob[:8] + b"\xff" * 8 + blob[16:],     # huge header len
        lambda blob: blob[:20] + b"}" + blob[21:],           # broken JSON
        lambda blob: blob[:-1],                              # truncated payload
    ])
    def test_corruption_raises_format_error(self, pair, mutate):
        blob = pack_tables(list(pair))
        with pytest.raises(BufferFormatError):
            unpack_tables(mutate(blob))

    def test_wrong_format_version(self, pair):
        blob = bytearray(pack_tables(list(pair)))
        position = blob.find(b"buffer-pack/v1")
        blob[position:position + len(b"buffer-pack/v1")] = b"buffer-pack/v9"
        with pytest.raises(BufferFormatError):
            unpack_tables(bytes(blob))


class TestSnapshotPair:
    def test_write_open_round_trip(self, pair, tmp_path):
        source, target = pair
        path = write_snapshot_pair(source, target, tmp_path / "snap.afbuf",
                                   name="pairdemo")
        loaded_source, loaded_target, name = open_snapshot_pair(path)
        assert name == "pairdemo"
        for original, loaded in ((source, loaded_source), (target, loaded_target)):
            for attribute in original.schema:
                assert list(loaded.column_view(attribute)) == \
                    list(original.column_view(attribute))

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(BufferFormatError):
            open_snapshot_pair(tmp_path / "missing.afbuf")

    def test_open_empty_file(self, tmp_path):
        path = tmp_path / "empty.afbuf"
        path.write_bytes(b"")
        with pytest.raises(BufferFormatError):
            open_snapshot_pair(path)

    def test_open_corrupt_file(self, pair, tmp_path):
        source, target = pair
        path = write_snapshot_pair(source, target, tmp_path / "snap.afbuf")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        try:
            loaded = open_snapshot_pair(path)
        except BufferFormatError:
            return
        # A flipped bit inside a value blob is undetectable structurally;
        # the tables must still be structurally sound then.
        for loaded_table in loaded[:2]:
            for attribute in loaded_table.schema:
                cells = list(loaded_table.column_view(attribute))
                assert len(cells) == loaded_table.n_rows

    def test_single_table_container_is_not_a_pair(self, pair, tmp_path):
        path = tmp_path / "one.afbuf"
        path.write_bytes(pack_tables([pair[0]]))
        with pytest.raises(BufferFormatError):
            open_snapshot_pair(path)


class TestInstanceIntegration:
    def test_save_load_round_trip(self, pair, tmp_path):
        instance = ProblemInstance(source=pair[0], target=pair[1], name="demo")
        path = instance.save(tmp_path / "inst.afbuf")
        loaded = ProblemInstance.load(path)
        assert loaded.name == "demo"
        assert loaded.n_source_records == instance.n_source_records
        for attribute in instance.schema:
            assert list(loaded.source.column_view(attribute)) == \
                list(instance.source.column_view(attribute))

    def test_ship_bytes_round_trip(self, pair):
        instance = ProblemInstance(source=pair[0], target=pair[1], name="wired")
        clone = ProblemInstance.from_ship_bytes(instance.ship_bytes())
        assert clone.name == "wired"
        assert clone.registry.names == instance.registry.names
        for attribute in instance.schema:
            assert list(clone.target.column_view(attribute)) == \
                list(instance.target.column_view(attribute))

    def test_ship_bytes_corruption(self, pair):
        instance = ProblemInstance(source=pair[0], target=pair[1])
        blob = bytearray(instance.ship_bytes())
        blob[10] ^= 0xFF
        with pytest.raises(BufferFormatError):
            ProblemInstance.from_ship_bytes(bytes(blob))


class TestContentDigest:
    def test_stable_and_chunk_sensitive(self):
        assert content_digest(b"ab", b"c") == content_digest(b"ab", b"c")
        assert content_digest(b"ab", b"c") != content_digest(b"a", b"bc")
        assert content_digest(b"abc") != content_digest(b"ab", b"c")
