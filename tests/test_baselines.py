"""Unit tests for the baseline comparators (keyed diff, similarity linking, trivial).

This file is the one place outside :mod:`repro.baselines` that may use the
raw comparator classes directly — it tests them.  Everything else goes
through the :class:`repro.baselines.Explainer` protocol, which the boundary
test at the bottom enforces repo-wide.
"""

import re
from pathlib import Path

import pytest

from repro.baselines import (
    Explainer,
    KeyedDiff,
    KeyedDiffExplainer,
    SimilarityExplainer,
    SimilarityLinker,
    TrivialExplainer,
    baseline_explainer,
    run_trivial_baseline,
)
from repro.dataio import Schema, Table
from repro.datagen.running_example import (
    reference_alignment,
    running_example_instance,
)


@pytest.fixture
def stable_key_snapshots():
    schema = Schema(["key", "value", "status"])
    source = Table(schema, [("k1", "10", "old"), ("k2", "20", "old"), ("k3", "30", "old")])
    target = Table(schema, [("k2", "20", "new"), ("k1", "11", "old"), ("k9", "90", "new")])
    return source, target


class TestKeyedDiff:
    def test_alignment_and_changes_with_stable_keys(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        report = KeyedDiff(["key"]).diff(source, target)
        assert report.alignment == {0: 1, 1: 0}
        assert report.deleted_source_ids == (2,)
        assert report.inserted_target_ids == (2,)
        changed = {(c.attribute, c.old_value, c.new_value) for c in report.cell_changes}
        assert ("value", "10", "11") in changed
        assert ("status", "old", "new") in changed
        assert report.n_changed_cells == 2

    def test_description_length_counts_inserts_and_changes(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        report = KeyedDiff(["key"]).diff(source, target)
        # 1 inserted record × 3 attributes + 2 changed cells × 2 values
        assert report.description_length(n_attributes=3) == 3 + 4

    def test_requires_key_attribute(self):
        with pytest.raises(ValueError):
            KeyedDiff([])

    def test_unknown_key_attribute_raises(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        with pytest.raises(Exception):
            KeyedDiff(["missing"]).diff(source, target)

    def test_summary_mentions_counts(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        text = KeyedDiff(["key"]).diff(source, target).summary()
        assert "2 aligned" in text

    def test_breaks_down_under_key_reassignment(self):
        # The motivating failure mode: on the running example the composite key
        # was reassigned, so a keyed diff on ID2 produces a wrong alignment.
        instance = running_example_instance()
        report = KeyedDiff(["ID2"]).diff(instance.source, instance.target)
        reference = reference_alignment()
        wrong = sum(
            1 for source_id, target_id in report.alignment.items()
            if reference.get(source_id) != target_id
        )
        assert wrong > len(report.alignment) / 2
        # and the per-record change script is much longer than Affidavit's
        # 77-cost explanation
        assert report.description_length(instance.n_attributes) > 77


class TestSimilarityLinker:
    def test_links_records_sharing_values(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        result = SimilarityLinker().link(source, target)
        assert result.alignment[1] == 0  # k2 rows share key and value
        assert result.n_aligned >= 2

    def test_one_to_one_matching(self):
        schema = Schema(["v"])
        source = Table(schema, [("a",), ("a",)])
        target = Table(schema, [("a",)])
        result = SimilarityLinker().link(source, target)
        assert result.n_aligned == 1
        assert len(result.deleted_source_ids) == 1

    def test_min_score_threshold(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        result = SimilarityLinker(min_score=3).link(source, target)
        # only exact triples would reach score 3; none exist
        assert result.n_aligned == 0

    def test_invalid_min_score(self):
        with pytest.raises(ValueError):
            SimilarityLinker(min_score=0)

    def test_degrades_on_running_example(self):
        # Val and Unit are transformed, ID1/ID2 reassigned: pure similarity
        # matching cannot recover the full reference alignment.
        instance = running_example_instance()
        result = SimilarityLinker().link(instance.source, instance.target)
        reference = reference_alignment()
        correct = sum(
            1 for source_id, target_id in result.alignment.items()
            if reference.get(source_id) == target_id
        )
        assert correct < len(reference)


class TestTrivialBaseline:
    def test_costs_and_structure(self):
        instance = running_example_instance()
        result = run_trivial_baseline(instance)
        assert result.cost == 112
        assert result.n_deleted == instance.n_source_records
        assert result.n_inserted == instance.n_target_records
        assert result.explanation.is_valid(instance)

    def test_alpha_scaling(self):
        instance = running_example_instance()
        assert run_trivial_baseline(instance, alpha=1.0).cost == 2 * 112
        assert run_trivial_baseline(instance, alpha=0.0).cost == 0


class TestExplainerProtocol:
    def test_all_explainers_satisfy_the_protocol(self):
        for explainer in (KeyedDiffExplainer(), SimilarityExplainer(),
                          TrivialExplainer()):
            assert isinstance(explainer, Explainer)

    def test_registry_lookup_by_tier_name(self):
        assert baseline_explainer("keyed_diff").name == "keyed_diff"
        assert baseline_explainer("trivial").name == "trivial"
        with pytest.raises(KeyError, match="unknown baseline"):
            baseline_explainer("oracle")

    def test_keyed_diff_auto_selects_the_most_distinct_column(self):
        instance = running_example_instance()
        keys = KeyedDiffExplainer().keys_for(instance)
        assert len(keys) == 1
        distinct = len(set(instance.source.column_view(keys[0])))
        for attribute in instance.schema.attributes:
            assert distinct >= len(set(instance.source.column_view(attribute)))

    def test_trivial_explainer_aligns_nothing(self):
        instance = running_example_instance()
        assert TrivialExplainer().align(instance) == {}
        outcome = TrivialExplainer().explain(instance)
        assert outcome.cost == outcome.trivial_cost == 112

    def test_exact_match_filter_keeps_outcomes_valid(self, stable_key_snapshots):
        # Both keyed pairs changed at least one cell between the snapshots,
        # so they are dropped from the explanation's alignment (identity
        # functions cannot map them) while the raw align() still reports
        # them — the honest-cost rule in action.
        source, target = stable_key_snapshots
        from repro.core import ProblemInstance

        instance = ProblemInstance(source=source, target=target)
        explainer = KeyedDiffExplainer(["key"])
        assert explainer.align(instance) == {0: 1, 1: 0}
        outcome = explainer.explain(instance)
        outcome.explanation.validate(instance)
        assert outcome.explanation.alignment == {}
        assert outcome.cost == outcome.trivial_cost


class TestExplainerBoundary:
    """Nothing outside repro.baselines may call the raw comparators — the
    Explainer protocol (and the strategy chain) is the supported surface."""

    RAW_CALLS = re.compile(
        r"\b(KeyedDiff|SimilarityLinker|run_trivial_baseline)\s*\("
    )

    def test_raw_baseline_calls_stay_inside_the_package(self):
        root = Path(__file__).resolve().parent.parent
        offenders = []
        for base in ("src/repro", "benchmarks", "examples", "tests"):
            directory = root / base
            if not directory.exists():
                continue
            for path in sorted(directory.rglob("*.py")):
                relative = path.relative_to(root)
                if relative.parts[:3] == ("src", "repro", "baselines"):
                    continue  # the package may use its own internals
                if relative == Path("tests/test_baselines.py"):
                    continue  # this file tests the raw classes
                for match in self.RAW_CALLS.finditer(path.read_text(encoding="utf-8")):
                    offenders.append(f"{relative}: {match.group(0)}")
        assert not offenders, (
            "raw baseline internals used outside repro.baselines "
            f"(go through the Explainer protocol instead): {offenders}"
        )
