"""Unit tests for the baseline comparators (keyed diff, similarity linking, trivial)."""

import pytest

from repro.baselines import KeyedDiff, SimilarityLinker, run_trivial_baseline
from repro.dataio import Schema, Table
from repro.datagen.running_example import (
    reference_alignment,
    running_example_instance,
)


@pytest.fixture
def stable_key_snapshots():
    schema = Schema(["key", "value", "status"])
    source = Table(schema, [("k1", "10", "old"), ("k2", "20", "old"), ("k3", "30", "old")])
    target = Table(schema, [("k2", "20", "new"), ("k1", "11", "old"), ("k9", "90", "new")])
    return source, target


class TestKeyedDiff:
    def test_alignment_and_changes_with_stable_keys(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        report = KeyedDiff(["key"]).diff(source, target)
        assert report.alignment == {0: 1, 1: 0}
        assert report.deleted_source_ids == (2,)
        assert report.inserted_target_ids == (2,)
        changed = {(c.attribute, c.old_value, c.new_value) for c in report.cell_changes}
        assert ("value", "10", "11") in changed
        assert ("status", "old", "new") in changed
        assert report.n_changed_cells == 2

    def test_description_length_counts_inserts_and_changes(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        report = KeyedDiff(["key"]).diff(source, target)
        # 1 inserted record × 3 attributes + 2 changed cells × 2 values
        assert report.description_length(n_attributes=3) == 3 + 4

    def test_requires_key_attribute(self):
        with pytest.raises(ValueError):
            KeyedDiff([])

    def test_unknown_key_attribute_raises(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        with pytest.raises(Exception):
            KeyedDiff(["missing"]).diff(source, target)

    def test_summary_mentions_counts(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        text = KeyedDiff(["key"]).diff(source, target).summary()
        assert "2 aligned" in text

    def test_breaks_down_under_key_reassignment(self):
        # The motivating failure mode: on the running example the composite key
        # was reassigned, so a keyed diff on ID2 produces a wrong alignment.
        instance = running_example_instance()
        report = KeyedDiff(["ID2"]).diff(instance.source, instance.target)
        reference = reference_alignment()
        wrong = sum(
            1 for source_id, target_id in report.alignment.items()
            if reference.get(source_id) != target_id
        )
        assert wrong > len(report.alignment) / 2
        # and the per-record change script is much longer than Affidavit's
        # 77-cost explanation
        assert report.description_length(instance.n_attributes) > 77


class TestSimilarityLinker:
    def test_links_records_sharing_values(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        result = SimilarityLinker().link(source, target)
        assert result.alignment[1] == 0  # k2 rows share key and value
        assert result.n_aligned >= 2

    def test_one_to_one_matching(self):
        schema = Schema(["v"])
        source = Table(schema, [("a",), ("a",)])
        target = Table(schema, [("a",)])
        result = SimilarityLinker().link(source, target)
        assert result.n_aligned == 1
        assert len(result.deleted_source_ids) == 1

    def test_min_score_threshold(self, stable_key_snapshots):
        source, target = stable_key_snapshots
        result = SimilarityLinker(min_score=3).link(source, target)
        # only exact triples would reach score 3; none exist
        assert result.n_aligned == 0

    def test_invalid_min_score(self):
        with pytest.raises(ValueError):
            SimilarityLinker(min_score=0)

    def test_degrades_on_running_example(self):
        # Val and Unit are transformed, ID1/ID2 reassigned: pure similarity
        # matching cannot recover the full reference alignment.
        instance = running_example_instance()
        result = SimilarityLinker().link(instance.source, instance.target)
        reference = reference_alignment()
        correct = sum(
            1 for source_id, target_id in result.alignment.items()
            if reference.get(source_id) == target_id
        )
        assert correct < len(reference)


class TestTrivialBaseline:
    def test_costs_and_structure(self):
        instance = running_example_instance()
        result = run_trivial_baseline(instance)
        assert result.cost == 112
        assert result.n_deleted == instance.n_source_records
        assert result.n_inserted == instance.n_target_records
        assert result.explanation.is_valid(instance)

    def test_alpha_scaling(self):
        instance = running_example_instance()
        assert run_trivial_baseline(instance, alpha=1.0).cost == 2 * 112
        assert run_trivial_baseline(instance, alpha=0.0).cost == 0
