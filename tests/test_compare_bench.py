"""Tests of the bench-trend comparison script (``benchmarks/compare_bench.py``)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload), encoding="utf-8")


def _run(baseline: Path, fresh: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT),
         "--baseline", str(baseline), "--fresh", str(fresh), *extra],
        capture_output=True, text=True,
    )


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "fresh"


def test_matching_results_pass(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_evaluator.json", {"speedup": 2.9})
    result = _run(baseline, fresh)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "| ok |" in result.stdout


def test_regression_beyond_threshold_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_evaluator.json", {"speedup": 2.0})
    result = _run(baseline, fresh)
    assert result.returncode == 1
    assert "REGRESSED" in result.stdout


def test_regression_within_custom_threshold_passes(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_evaluator.json", {"speedup": 2.0})
    result = _run(baseline, fresh, "--max-regression", "0.5")
    assert result.returncode == 0


def test_missing_fresh_result_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    fresh.mkdir()
    result = _run(baseline, fresh)
    assert result.returncode == 2
    assert "MISSING" in result.stdout


def test_ungated_parallel_metric_never_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_parallel.json",
           {"speedup_at_max": 2.1, "gated": True})
    _write(fresh, "BENCH_parallel.json",
           {"speedup_at_max": 0.7, "gated": False})
    result = _run(baseline, fresh)
    assert result.returncode == 0
    assert "ungated" in result.stdout


def test_small_host_baseline_flags_promotion_instead_of_fake_gating(dirs):
    # A baseline committed from a 1-core box ("gated": false) cannot anchor
    # a meaningful trend comparison; a gate-worthy fresh run is surfaced as
    # PROMOTE-BASELINE (the in-bench threshold still enforces the absolute
    # floor) rather than silently passing or failing against a bogus anchor.
    baseline, fresh = dirs
    _write(baseline, "BENCH_parallel.json",
           {"speedup_at_max": 0.7, "gated": False})
    _write(fresh, "BENCH_parallel.json",
           {"speedup_at_max": 1.5, "gated": True})
    result = _run(baseline, fresh)
    assert result.returncode == 0
    assert "PROMOTE-BASELINE" in result.stdout


def test_gated_parallel_regression_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_parallel.json",
           {"speedup_at_max": 2.1, "gated": True})
    _write(fresh, "BENCH_parallel.json",
           {"speedup_at_max": 1.0, "gated": True})
    result = _run(baseline, fresh)
    assert result.returncode == 1


def test_blocking_metric_is_gated(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_blocking.json", {"speedup": 5.0})
    _write(fresh, "BENCH_blocking.json", {"speedup": 3.0})
    result = _run(baseline, fresh)
    assert result.returncode == 1
    assert "encoded-vs-string blocking speedup" in result.stdout


def test_unregistered_baseline_file_without_fresh_counterpart_fails(dirs):
    # Every committed baseline is expected fresh — even one no gated metric
    # reads; a benchmark silently dropped from the CI invocation must fail
    # the job instead of vanishing from the trend.
    baseline, fresh = dirs
    _write(baseline, "BENCH_custom.json", {"anything": 1})
    fresh.mkdir()
    result = _run(baseline, fresh)
    assert result.returncode == 2
    assert "BENCH_custom.json" in result.stdout
    assert "MISSING" in result.stdout


def test_unregistered_baseline_file_with_fresh_counterpart_passes(dirs):
    baseline, fresh = dirs
    _write(baseline, "BENCH_custom.json", {"anything": 1})
    _write(fresh, "BENCH_custom.json", {"anything": 2})
    result = _run(baseline, fresh)
    assert result.returncode == 0


def test_new_benchmark_without_baseline_fails(dirs):
    # A fresh result nothing is committed against cannot be trend-gated;
    # the job must fail until the artifact is promoted to a baseline.
    baseline, fresh = dirs
    baseline.mkdir()
    _write(fresh, "BENCH_evaluator.json", {"speedup": 3.0})
    result = _run(baseline, fresh)
    assert result.returncode == 2
    assert "NO-BASELINE" in result.stdout
    assert "no committed baseline" in result.stderr


def test_unregistered_fresh_file_without_baseline_fails(dirs):
    # Same rule for files no gated metric reads: both directories must
    # agree on the benchmark set.
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_custom.json", {"anything": 1})
    result = _run(baseline, fresh)
    assert result.returncode == 2
    assert "(file) BENCH_custom.json" in result.stdout
    assert "NO-BASELINE" in result.stdout


def test_metric_value_absent_from_both_sides_is_not_a_failure(dirs):
    # Both sides committed the file but the gated key is absent (e.g. an
    # older payload layout): flagged n/a, never an exit-2 set mismatch.
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"other": 1})
    _write(fresh, "BENCH_evaluator.json", {"other": 2})
    result = _run(baseline, fresh)
    assert result.returncode == 0
    assert "| n/a |" in result.stdout


def test_summary_file_receives_the_table(dirs, tmp_path):
    baseline, fresh = dirs
    _write(baseline, "BENCH_evaluator.json", {"speedup": 3.0})
    _write(fresh, "BENCH_evaluator.json", {"speedup": 3.2})
    summary = tmp_path / "summary.md"
    result = _run(baseline, fresh, "--summary", str(summary))
    assert result.returncode == 0
    text = summary.read_text(encoding="utf-8")
    assert "Benchmark trend" in text
    assert "| metric | baseline | fresh |" in text
