"""Tests of the fuzzing mutators (:mod:`repro.fuzz.mutators`).

Two properties matter for a metamorphic fuzzer: mutations are deterministic
under a seeded RNG (replayable runs), and table mutations stay *in-domain* —
they emit well-formed snapshot pairs that never smuggle the engines' reserved
``NOT_APPLICABLE`` sentinel into raw cells (that would turn every divergence
oracle into noise).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import NOT_APPLICABLE
from repro.dataio import read_csv_text
from repro.fuzz import (
    PAYLOAD_MUTATORS,
    SnapshotPair,
    TABLE_MUTATORS,
    TORTURE_VALUES,
    mutate_pair,
    mutate_payload,
)


@pytest.fixture
def pair() -> SnapshotPair:
    return SnapshotPair(
        source=read_csv_text(
            "Name,Val,Mod\nSmith,1000,air\nMiller,2000,air\n"
            "Johnson,1000,sea\nBrown,3000,sea\n"
        ),
        target=read_csv_text(
            "Name,Val,Mod\nSMITH,1,air\nMILLER,2,air\nJOHNSON,1,sea\n"
        ),
    )


@pytest.fixture
def payload() -> str:
    return json.dumps({
        "schema_version": "affidavit.request/v1",
        "source_csv": "A,B\n1,x\n",
        "target_csv": "A,B\n1,X\n",
        "config": "hid",
    })


def _cells(pair: SnapshotPair):
    for table in (pair.source, pair.target):
        for row in table.rows():
            yield from row


class TestTableMutators:
    def test_every_mutator_emits_valid_pair_or_none(self, pair):
        rng = random.Random(99)
        for name, mutator in TABLE_MUTATORS.items():
            for _ in range(10):
                mutated = mutator(pair, rng)
                if mutated is None:
                    continue
                # SnapshotPair.__post_init__ already enforces the shared
                # schema; spot-check the tables are rectangular.
                assert mutated.source.schema == mutated.target.schema, name
                for row in mutated.source.rows():
                    assert len(row) == mutated.n_columns, name

    def test_mutate_pair_is_deterministic(self, pair):
        first, chain_a = mutate_pair(pair, random.Random(1234))
        second, chain_b = mutate_pair(pair, random.Random(1234))
        assert chain_a == chain_b
        assert list(first.source.rows()) == list(second.source.rows())
        assert list(first.target.rows()) == list(second.target.rows())

    def test_mutate_pair_reports_applied_chain(self, pair):
        mutated, chain = mutate_pair(pair, random.Random(5), rounds=3)
        assert 1 <= len(chain) <= 3
        assert all(step in TABLE_MUTATORS for step in chain)
        assert mutated.n_columns >= 1

    def test_mutations_stay_sentinel_free(self, pair):
        # The reserved in-band sentinel must never appear in raw cells:
        # ProblemInstance rejects such tables, so a mutator emitting it
        # would waste the whole fuzzing budget on out-of-domain inputs.
        assert NOT_APPLICABLE not in TORTURE_VALUES
        rng = random.Random(2024)
        current = pair
        for _ in range(60):
            current, _chain = mutate_pair(current, rng)
            assert all(cell != NOT_APPLICABLE for cell in _cells(current))

    def test_torture_values_include_lookalike_not_sentinel(self):
        assert "<not-applicable>" in TORTURE_VALUES


class TestPayloadMutators:
    def test_every_mutator_emits_text_or_none(self, payload):
        rng = random.Random(7)
        for name, mutator in PAYLOAD_MUTATORS.items():
            for _ in range(10):
                mutated = mutator(payload, rng)
                assert mutated is None or isinstance(mutated, str), name

    def test_mutate_payload_is_deterministic(self, payload):
        first, chain_a = mutate_payload(payload, random.Random(42))
        second, chain_b = mutate_payload(payload, random.Random(42))
        assert first == second
        assert chain_a == chain_b
        assert all(step in PAYLOAD_MUTATORS for step in chain_a)

    def test_structural_mutators_tolerate_garbage_input(self):
        rng = random.Random(3)
        for name, mutator in PAYLOAD_MUTATORS.items():
            # Must not crash on text that is not JSON at all.
            result = mutator("\x00\xff{{{ not json", rng)
            assert result is None or isinstance(result, str), name


class TestBufferMutators:
    @pytest.fixture
    def blob(self, pair):
        from repro.dataio import pack_tables

        return pack_tables([pair.source, pair.target], name="fuzz")

    def test_every_mutator_emits_bytes_or_none(self, blob):
        from repro.fuzz import BUFFER_MUTATORS

        rng = random.Random(11)
        for name, mutator in BUFFER_MUTATORS.items():
            for _ in range(10):
                mutated = mutator(blob, rng)
                assert mutated is None or isinstance(mutated, bytes), name

    def test_mutate_buffer_is_deterministic(self, blob):
        from repro.fuzz import BUFFER_MUTATORS, mutate_buffer

        first, chain_a = mutate_buffer(blob, random.Random(42))
        second, chain_b = mutate_buffer(blob, random.Random(42))
        assert first == second
        assert chain_a == chain_b
        assert all(step in BUFFER_MUTATORS for step in chain_a)

    def test_mutators_tolerate_garbage_input(self):
        from repro.fuzz import BUFFER_MUTATORS

        rng = random.Random(5)
        for name, mutator in BUFFER_MUTATORS.items():
            for garbage in (b"", b"\x00", b"AFBUF01\n", b"junk" * 10):
                result = mutator(garbage, rng)
                assert result is None or isinstance(result, bytes), name

    def test_corruption_is_detected_or_benign(self, blob):
        """Spot-check the oracle's core contract directly: a mutated blob
        either raises BufferFormatError or decodes to sound tables."""
        from repro.dataio import BufferFormatError, unpack_tables
        from repro.fuzz import mutate_buffer

        rng = random.Random(23)
        for _ in range(50):
            corrupted, _chain = mutate_buffer(blob, rng)
            try:
                tables, _extra, _name = unpack_tables(corrupted)
                for table in tables:
                    for attribute in table.schema:
                        list(table.column_view(attribute))
            except BufferFormatError:
                continue
