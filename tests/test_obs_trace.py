"""Unit tests of :mod:`repro.obs.trace`: spans, tracers, the no-op default."""

from __future__ import annotations

import gc
import json
import sys
import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer, phase_totals
from repro.obs.trace import _NullSpan


class TestSpanTree:
    def test_nested_spans_become_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        roots = tracer.roots()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == ["inner"]
        inner = roots[0].children[0]
        assert inner.start >= roots[0].start
        assert inner.duration <= roots[0].duration

    def test_sequential_roots_keep_completion_order(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots()] == ["first", "second"]

    def test_counters_accumulate_and_sort(self):
        tracer = Tracer()
        with tracer.span("phase") as span:
            span.add("b", 2.0)
            span.add("a")
            span.add("b", 3.0)
        (root,) = tracer.roots()
        assert root.counters == (("a", 1.0), ("b", 5.0))
        assert root.counter_values == {"a": 1.0, "b": 5.0}

    def test_tracer_add_bumps_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("hits", 2.0)
        (root,) = tracer.roots()
        assert root.counters == ()
        assert root.children[0].counter_values == {"hits": 2.0}
        # Outside any span the call is a harmless no-op.
        tracer.add("hits")
        assert len(tracer.roots()) == 1

    def test_event_attaches_under_current_span(self):
        tracer = Tracer()
        with tracer.span("phase"):
            tracer.event("shard", 0.25, counters={"shard": 1.0})
        (root,) = tracer.roots()
        (event,) = root.children
        assert event.name == "shard"
        assert event.duration == 0.25
        assert event.counter_values == {"shard": 1.0}
        assert event.start >= 0.0

    def test_event_without_open_span_becomes_root(self):
        tracer = Tracer()
        tracer.event("lonely", 0.1)
        assert [root.name for root in tracer.roots()] == ["lonely"]

    def test_snapshot_is_none_until_exit(self):
        tracer = Tracer()
        with tracer.span("phase") as span:
            assert span.snapshot() is None
        frozen = span.snapshot()
        assert isinstance(frozen, Span)
        assert frozen.name == "phase"

    def test_attach_adopts_foreign_closed_span(self):
        tracer = Tracer()
        shipped = Span(name="remote", start=0.0, duration=0.5)
        with tracer.span("phase") as span:
            span.attach(shipped)
        (root,) = tracer.roots()
        assert root.children == (shipped,)

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()
            with tracer.span(name):
                with tracer.span(f"{name}-child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.roots()
        # Each thread contributed one root with its own child — no
        # cross-thread adoption even though both ran concurrently.
        assert sorted(root.name for root in roots) == ["t0", "t1"]
        for root in roots:
            assert [child.name for child in root.children] == [f"{root.name}-child"]


class TestSpanSerialization:
    def _tree(self) -> Span:
        return Span(
            name="explain", start=0.0, duration=2.5,
            counters=(("expansions", 42.0),),
            children=(
                Span(name="search", start=0.5, duration=2.0,
                     children=(Span(name="induction", start=0.6, duration=0.25),)),
            ),
        )

    def test_json_round_trip_is_identity(self):
        span = self._tree()
        payload = json.loads(json.dumps(span.to_dict()))
        assert Span.from_dict(payload) == span

    def test_to_dict_omits_empty_fields(self):
        payload = Span(name="leaf", start=0.0, duration=0.0).to_dict()
        assert payload == {"name": "leaf", "start": 0.0, "duration": 0.0}

    def test_walk_is_depth_first(self):
        names = [span.name for span in self._tree().walk()]
        assert names == ["explain", "search", "induction"]

    @pytest.mark.parametrize("payload", [
        "not a mapping",
        {},
        {"name": ""},
        {"name": "x"},  # missing duration
        {"name": "x", "duration": "fast"},
        {"name": "x", "duration": -1.0},
        {"name": "x", "duration": float("nan")},
        {"name": "x", "duration": float("inf")},
        {"name": "x", "duration": True},
        {"name": "x", "duration": 1.0, "start": -0.5},
        {"name": "x", "duration": 1.0, "counters": ["not", "a", "mapping"]},
        {"name": "x", "duration": 1.0, "counters": {"k": float("nan")}},
        {"name": "x", "duration": 1.0, "counters": {"k": "many"}},
        {"name": "x", "duration": 1.0, "children": "nope"},
        {"name": "x", "duration": 1.0, "children": [{"name": ""}]},
    ])
    def test_from_dict_rejects_malformed_payloads(self, payload):
        with pytest.raises(ValueError):
            Span.from_dict(payload)


class TestPhaseTotals:
    def test_totals_are_inclusive_per_name(self):
        root = Span(
            name="explain", start=0.0, duration=3.0,
            children=(
                Span(name="search", start=0.0, duration=2.0,
                     children=(Span(name="induction", start=0.0, duration=0.5),)),
                Span(name="search", start=2.0, duration=0.5),
            ),
        )
        totals = phase_totals(root)
        assert totals == {"search": 2.5, "induction": 0.5}
        assert phase_totals(root, include_root=True)["explain"] == 3.0

    def test_none_gives_empty_totals(self):
        assert phase_totals(None) == {}


class TestNullTracer:
    def test_shared_singleton_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert isinstance(NULL_TRACER.span("a"), _NullSpan)

    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True
        with NULL_TRACER.span("phase") as span:
            span.add("ignored")
            span.attach(Span(name="x", start=0.0, duration=0.0))
        assert span.snapshot() is None
        assert NULL_TRACER.roots() == ()
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.event("x", 1.0) is None

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer
        null = NullTracer()
        assert ensure_tracer(null) is null

    @pytest.mark.skipif(not hasattr(sys, "getallocatedblocks"),
                        reason="needs sys.getallocatedblocks")
    def test_hot_path_does_not_allocate(self):
        span = NULL_TRACER.span  # bound method held by the call sites

        def hot_loop(iterations):
            for _ in range(iterations):
                with span("phase"):
                    NULL_TRACER.add("counter")

        hot_loop(1000)  # warm up any lazy interpreter caches
        gc.disable()
        try:
            gc.collect()
            before = sys.getallocatedblocks()
            hot_loop(10_000)
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        # The shared singleton means the loop itself allocates nothing;
        # allow a few blocks of interpreter noise (frame caches etc.).
        assert after - before <= 8
