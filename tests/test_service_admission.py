"""Admission control: bounded queue depth, per-client quotas, priorities.

The deterministic saturation pattern from the cancellation tests: a blocker
job parks inside its progress callback on a threading.Event, so the worker
pool is provably busy while the assertions run — no sleeps, no racing the
scheduler.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import identity_configuration
from repro.dataio import read_csv_text
from repro.service import AdmissionError, JobManager, JobState, create_server
from repro.service.server import ClientQuotas


def make_pair(salt: int):
    """A distinct snapshot pair per salt (distinct idempotency keys)."""
    source = read_csv_text(
        "id,val\n" + "".join(f"{i},{i * 100 * salt}\n" for i in range(1, 5))
    )
    target = read_csv_text(
        "id,val\n" + "".join(f"{i},{i * salt}\n" for i in range(1, 5))
    )
    return source, target


@pytest.fixture
def gate():
    """(config, in_search, release): a search that parks until released."""
    in_search = threading.Event()
    release = threading.Event()

    def parked(progress) -> None:
        in_search.set()
        release.wait(timeout=30.0)

    config = identity_configuration().with_overrides(progress_callback=parked)
    yield config, in_search, release
    release.set()


# --------------------------------------------------------------------- #
# manager-level queue depth
# --------------------------------------------------------------------- #
def test_saturated_queue_rejects_with_retry_after(gate):
    config, in_search, release = gate
    with JobManager(workers=1, max_queue_depth=2) as manager:
        blocker = manager.submit(*make_pair(2), config=config, use_cache=False)
        assert in_search.wait(10.0)
        queued = manager.submit(*make_pair(3), config=config, use_cache=False)
        assert manager.active() == 2

        with pytest.raises(AdmissionError) as excinfo:
            manager.submit(*make_pair(5), config=config, use_cache=False)
        error = excinfo.value
        assert error.reason == "queue_full"
        assert error.retry_after_seconds >= 1
        assert isinstance(error, RuntimeError)  # stays a RuntimeError subtype

        release.set()
        assert blocker.wait(30.0) and queued.wait(30.0)
        # Terminal jobs release their admission slots: submissions flow again.
        job = manager.submit(*make_pair(7), use_cache=False)
        assert job.wait(30.0)
        assert manager.active() == 0


def test_cache_hits_bypass_admission(gate):
    config, in_search, release = gate
    with JobManager(workers=1, max_queue_depth=1) as manager:
        source, target = make_pair(11)
        warm = manager.submit(source, target)
        assert warm.wait(30.0)

        blocker = manager.submit(*make_pair(13), config=config,
                                 use_cache=False)
        assert in_search.wait(10.0)
        with pytest.raises(AdmissionError):
            manager.submit(*make_pair(17), use_cache=False)
        # The saturated queue still answers already-computed requests.
        hit = manager.submit(source, target)
        assert hit.state is JobState.DONE
        assert hit.cache_hit is True
        release.set()
        assert blocker.wait(30.0)


def test_priority_orders_the_queue(gate):
    config, in_search, release = gate
    with JobManager(workers=1) as manager:
        blocker = manager.submit(*make_pair(2), config=config, use_cache=False)
        assert in_search.wait(10.0)
        low = manager.submit(*make_pair(3), priority=-5, use_cache=False)
        medium = manager.submit(*make_pair(5), priority=0, use_cache=False)
        high = manager.submit(*make_pair(7), priority=10, use_cache=False)
        assert (low.priority, medium.priority, high.priority) == (-5, 0, 10)

        release.set()
        for job in (blocker, low, medium, high):
            assert job.wait(30.0)
        assert high.started_at < medium.started_at < low.started_at


# --------------------------------------------------------------------- #
# quotas (unit)
# --------------------------------------------------------------------- #
def test_quota_buckets_are_per_client():
    tick = [0.0]
    quotas = ClientQuotas(rate_per_second=1.0, burst=2, clock=lambda: tick[0])
    assert quotas.try_acquire("a") is None
    assert quotas.try_acquire("a") is None
    retry = quotas.try_acquire("a")
    assert retry is not None and retry > 0
    assert quotas.try_acquire("b") is None  # b has its own bucket
    tick[0] = 1.5  # refill grants a another token
    assert quotas.try_acquire("a") is None


def test_quota_client_map_is_bounded():
    quotas = ClientQuotas(rate_per_second=1.0, max_clients=4)
    for n in range(40):
        quotas.try_acquire(f"client-{n}")
    assert quotas.to_dict()["clients"] == 4


def test_quota_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ClientQuotas(rate_per_second=0)
    with pytest.raises(ValueError):
        ClientQuotas(rate_per_second=1.0, burst=0.5)


# --------------------------------------------------------------------- #
# HTTP level
# --------------------------------------------------------------------- #
def _post(base_url, body, client=None):
    data = json.dumps(body).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if client is not None:
        headers["X-Client-Id"] = client
    req = urllib.request.Request(base_url + "/v1/explain", method="POST",
                                 data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=30.0) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _body(salt, **extra):
    body = {
        "source_csv": "id,val\n" + "".join(
            f"{i},{i * 100 * salt}\n" for i in range(1, 5)),
        "target_csv": "id,val\n" + "".join(
            f"{i},{i * salt}\n" for i in range(1, 5)),
        "name": f"salt{salt}",
    }
    body.update(extra)
    return body


@pytest.fixture
def bounded_server():
    server = create_server(workers=1, max_queue_depth=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown_service()
    thread.join(timeout=10.0)


def test_http_429_with_retry_after_when_saturated(bounded_server):
    # throttle_seconds keeps the single admitted job busy for seconds.
    status, view, _ = _post(bounded_server, _body(2, throttle_seconds=0.5,
                                                  use_cache=False))
    assert status == 202
    blocker_id = view["id"]

    status, payload, headers = _post(bounded_server, _body(3))
    assert status == 429
    assert payload["schema_version"] == "affidavit.error/v1"
    assert payload["code"] == "queue_full"
    assert payload["error"] == payload["message"]
    assert payload["retry_after_ms"] >= 1
    assert int(headers["Retry-After"]) >= 1

    # Cancel the blocker; its slot frees and submissions are admitted again.
    req = urllib.request.Request(
        f"{bounded_server}/v1/jobs/{blocker_id}", method="DELETE")
    with urllib.request.urlopen(req, timeout=30.0):
        pass
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, view, _ = _post(bounded_server, _body(5))
        if status in (200, 202):
            break
        time.sleep(0.05)
    assert status in (200, 202)


@pytest.fixture
def quota_server():
    server = create_server(workers=1, quota_rate=0.001, quota_burst=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown_service()
    thread.join(timeout=10.0)


def test_http_quota_isolates_clients(quota_server):
    # Invalid bodies still consume quota tokens (the check runs first), so
    # the test never queues real work.
    for _ in range(2):
        status, payload, _ = _post(quota_server, {}, client="alice")
        assert status == 400
    status, payload, headers = _post(quota_server, {}, client="alice")
    assert status == 429
    assert payload["code"] == "quota_exceeded"
    assert "alice" in payload["message"]
    assert int(headers["Retry-After"]) >= 1
    # Bob's bucket is untouched.
    status, payload, _ = _post(quota_server, {}, client="bob")
    assert status == 400
    # No client header at all falls back to the shared anonymous bucket.
    status, payload, _ = _post(quota_server, {})
    assert status == 400


@pytest.fixture
def plain_server():
    server = create_server(workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown_service()
    thread.join(timeout=10.0)


def test_priority_field_round_trips_and_validates(plain_server):
    status, view, _ = _post(plain_server, _body(2, priority=5))
    assert status in (200, 202)
    assert view["priority"] == 5

    status, payload, _ = _post(plain_server, _body(3, priority=101))
    assert status == 400
    assert payload["schema_version"] == "affidavit.error/v1"
    assert payload["code"] == "invalid_request"

    status, payload, _ = _post(plain_server, _body(3, priority="high"))
    assert status == 400


def test_healthz_reports_admission_state(bounded_server):
    with urllib.request.urlopen(f"{bounded_server}/healthz",
                                timeout=30.0) as response:
        health = json.loads(response.read())
    assert health["admission"]["max_queue_depth"] == 1
    assert health["admission"]["active"] == 0
    assert health["admission"]["retry_after_seconds"] >= 1
    assert health["quota"] is None
