"""Unit tests for the basic meta functions: identity, casing, constant, arithmetic."""

import pytest

from repro.functions import (
    IDENTITY,
    Addition,
    AdditionMeta,
    ConstantValue,
    ConstantValueMeta,
    Division,
    DivisionMeta,
    Identity,
    IdentityMeta,
    Lowercasing,
    LowercasingMeta,
    Multiplication,
    MultiplicationMeta,
    Uppercasing,
    UppercasingMeta,
)


class TestIdentity:
    def test_apply(self):
        assert IDENTITY.apply("anything") == "anything"

    def test_description_length_zero(self):
        assert IDENTITY.description_length == 0

    def test_is_identity_flag(self):
        assert IDENTITY.is_identity
        assert not ConstantValue("x").is_identity

    def test_equality_and_hash(self):
        assert Identity() == IDENTITY
        assert hash(Identity()) == hash(IDENTITY)

    def test_meta_induces_only_on_equal_values(self):
        meta = IdentityMeta()
        assert list(meta.induce("a", "a")) == [IDENTITY]
        assert list(meta.induce("a", "b")) == []


class TestCasing:
    def test_uppercasing(self):
        assert Uppercasing().apply("Sap") == "SAP"
        assert Uppercasing().description_length == 0

    def test_lowercasing(self):
        assert Lowercasing().apply("SAP") == "sap"

    def test_uppercasing_meta_requires_visible_effect(self):
        meta = UppercasingMeta()
        assert list(meta.induce("abc", "ABC"))
        assert not list(meta.induce("ABC", "ABC"))
        assert not list(meta.induce("abc", "abd"))

    def test_lowercasing_meta(self):
        meta = LowercasingMeta()
        assert list(meta.induce("ABC", "abc"))
        assert not list(meta.induce("abc", "abc"))


class TestConstant:
    def test_apply_ignores_input(self):
        function = ConstantValue("k $")
        assert function.apply("USD") == "k $"
        assert function.apply("") == "k $"

    def test_description_length_one(self):
        assert ConstantValue("x").description_length == 1

    def test_covers(self):
        assert ConstantValue("k $").covers("USD", "k $")
        assert not ConstantValue("k $").covers("USD", "EUR")

    def test_meta_skips_identity_like_examples(self):
        meta = ConstantValueMeta()
        assert [f.constant for f in meta.induce("USD", "k $")] == ["k $"]
        assert not list(meta.induce("same", "same"))

    def test_equality(self):
        assert ConstantValue("a") == ConstantValue("a")
        assert ConstantValue("a") != ConstantValue("b")


class TestAddition:
    def test_apply(self):
        assert Addition(5).apply("10") == "15"
        assert Addition(-5).apply("10") == "5"
        assert Addition("0.5").apply("1.5") == "2"

    def test_not_applicable_to_strings(self):
        assert Addition(1).apply("abc") is None

    def test_description_length(self):
        assert Addition(7).description_length == 1

    def test_meta_induction(self):
        candidates = list(AdditionMeta().induce("10", "15"))
        assert len(candidates) == 1
        assert candidates[0].apply("100") == "105"

    def test_meta_skips_zero_delta(self):
        assert not list(AdditionMeta().induce("10", "10"))

    def test_meta_skips_non_numeric(self):
        assert not list(AdditionMeta().induce("a", "5"))
        assert not list(AdditionMeta().induce("5", "a"))


class TestDivisionAndMultiplication:
    def test_division_running_example(self):
        division = Division(1000)
        assert division.apply("80000") == "80"
        assert division.apply("6540") == "6.54"
        assert division.apply("65") == "0.065"
        assert division.apply("0") == "0"

    def test_division_by_zero_rejected(self):
        with pytest.raises(ValueError):
            Division(0)

    def test_division_not_applicable_to_text(self):
        assert Division(2).apply("two") is None

    def test_multiplication(self):
        assert Multiplication(1000).apply("0.065") == "65"
        assert Multiplication(3).apply("7") == "21"

    def test_division_meta_handles_shrinking_values(self):
        candidates = list(DivisionMeta().induce("6540", "6.54"))
        assert len(candidates) == 1
        assert candidates[0] == Division(1000)

    def test_division_meta_ignores_growing_values(self):
        assert not list(DivisionMeta().induce("5", "50"))

    def test_multiplication_meta_handles_growing_values(self):
        candidates = list(MultiplicationMeta().induce("5", "50"))
        assert candidates == [Multiplication(10)]

    def test_multiplication_meta_ignores_shrinking_values(self):
        assert not list(MultiplicationMeta().induce("50", "5"))

    def test_metas_skip_zero_sources_and_targets(self):
        assert not list(DivisionMeta().induce("0", "5"))
        assert not list(DivisionMeta().induce("5", "0"))
        assert not list(MultiplicationMeta().induce("0", "5"))

    def test_division_description_length(self):
        assert Division(10).description_length == 1
        assert Multiplication(10).description_length == 1
