"""Batch front-end: pair discovery, bulk runs, cache reuse, CLI integration."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dataio import write_csv, read_csv_text
from repro.service import JobManager, discover_pairs, run_batch


def _write_pair(directory, name: str, divisor: int, rows: int = 5) -> None:
    source = read_csv_text(
        "id,val\n" + "".join(f"{i},{i * 3 * divisor}\n" for i in range(1, rows + 1))
    )
    target = read_csv_text(
        "id,val\n" + "".join(f"{i},{i * 3}\n" for i in range(1, rows + 1))
    )
    write_csv(source, directory / f"{name}_source.csv")
    write_csv(target, directory / f"{name}_target.csv")


@pytest.fixture
def pair_dir(tmp_path):
    directory = tmp_path / "pairs"
    directory.mkdir()
    _write_pair(directory, "alpha", 10)
    _write_pair(directory, "beta", 100)
    _write_pair(directory, "gamma", 1000)
    return directory


def test_discover_pairs_sorted_and_complete(pair_dir):
    (pair_dir / "lonely_source.csv").write_text("a\n1\n", encoding="utf-8")
    (pair_dir / "unrelated.csv").write_text("a\n1\n", encoding="utf-8")
    pairs = discover_pairs(pair_dir)
    assert [name for name, _, _ in pairs] == ["alpha", "beta", "gamma"]
    for name, source_path, target_path in pairs:
        assert source_path.name == f"{name}_source.csv"
        assert target_path.name == f"{name}_target.csv"


def test_run_batch_explains_every_pair(pair_dir, tmp_path):
    output_dir = tmp_path / "out"
    events = []
    outcomes = run_batch(pair_dir, workers=2, output_dir=output_dir,
                         on_progress=lambda name, state: events.append((name, state)))
    assert [o.name for o in outcomes] == ["alpha", "beta", "gamma"]
    assert all(o.state == "done" for o in outcomes)
    assert all(o.cost is not None and o.cost <= o.trivial_cost for o in outcomes)
    assert events == [("alpha", "done"), ("beta", "done"), ("gamma", "done")]

    summary = json.loads((output_dir / "batch_summary.json").read_text())
    assert len(summary) == 3
    for name in ("alpha", "beta", "gamma"):
        payload = json.loads(
            (output_dir / f"{name}.explanation.json").read_text()
        )
        assert payload["state"] == "done"
        assert payload["explanation"]["functions"]["val"]["meta"] == "division"


def test_run_batch_reuses_shared_manager_cache(pair_dir):
    with JobManager(workers=2) as manager:
        first = run_batch(pair_dir, manager=manager)
        assert all(not o.cache_hit for o in first)
        second = run_batch(pair_dir, manager=manager)
        assert all(o.cache_hit for o in second)
        assert all(o.state == "done" for o in second)


def test_corrupt_pair_fails_without_sinking_the_batch(pair_dir):
    (pair_dir / "broken_source.csv").write_text("a,b\n1,2\n3\n", encoding="utf-8")
    (pair_dir / "broken_target.csv").write_text("a,b\n1,2\n", encoding="utf-8")
    outcomes = run_batch(pair_dir, workers=2)
    by_name = {o.name: o for o in outcomes}
    assert by_name["broken"].state == "failed"
    assert by_name["broken"].error
    for name in ("alpha", "beta", "gamma"):
        assert by_name[name].state == "done"


def test_run_batch_empty_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        run_batch(tmp_path)


def test_cli_batch_command(pair_dir, tmp_path, capsys):
    output_dir = tmp_path / "cli-out"
    exit_code = main([
        "batch", str(pair_dir), "--workers", "2", "--output-dir", str(output_dir),
    ])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "3/3 pairs explained" in captured
    assert (output_dir / "batch_summary.json").exists()


def test_cli_batch_missing_directory(tmp_path, capsys):
    exit_code = main(["batch", str(tmp_path / "void"), "--quiet"])
    assert exit_code == 1


def test_cli_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_named_config_flows_into_request_provenance(pair_dir):
    from repro.core import START_OVERLAP

    with JobManager(workers=2) as manager:
        outcomes = run_batch(pair_dir, manager=manager, config="hs",
                             overrides={"seed": 3})
        assert all(o.state == "done" for o in outcomes)
        for job in manager.jobs():
            assert job.request.config == "hs"
            assert job.result.config.start_strategy == START_OVERLAP
            assert job.result.config.seed == 3
            assert job.outcome.provenance.base_config == "hs"


def test_explicit_config_object_does_not_claim_a_base_name(pair_dir):
    from repro.core import overlap_configuration

    with JobManager(workers=2) as manager:
        outcomes = run_batch(pair_dir, manager=manager,
                             config=overlap_configuration(seed=3))
        assert all(o.state == "done" for o in outcomes)
        for job in manager.jobs():
            # The request's default name ("hid") did not determine the run.
            assert job.outcome.provenance.base_config is None
            assert job.result.config.start_strategy == "overlap"
