"""Unit tests for state-cost evaluation (Section 4.5) and start states (Section 4.2)."""

import pytest

from repro.core import (
    ProblemInstance,
    SearchState,
    StateEvaluator,
    build_blocking,
    empty_start_states,
    explanation_cost,
    explanation_from_functions,
    identity_start_states,
    overlap_start_states,
    start_states,
    identity_configuration,
    overlap_configuration,
    AffidavitConfig,
)
from repro.dataio import Schema, Table
from repro.datagen.running_example import reference_functions, running_example_instance
from repro.functions import IDENTITY, ConstantValue, Division


@pytest.fixture
def instance():
    schema = Schema(["kind", "amount"])
    source = Table(schema, [("A", "1000"), ("A", "2000"), ("B", "3000")])
    target = Table(schema, [("A", "1"), ("A", "2"), ("B", "3"), ("C", "9")])
    return ProblemInstance(source=source, target=target)


class TestStateEvaluator:
    def test_cost_of_empty_state_is_delta_based(self, instance):
        evaluator = StateEvaluator(instance)
        state = SearchState.empty(instance.schema)
        # one target more than sources → at least one insertion × |A|
        assert evaluator.cost(state) == 1 * 2

    def test_cost_grows_with_function_lengths(self, instance):
        evaluator = StateEvaluator(instance)
        cheap = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        pricey = SearchState.empty(instance.schema).extend("kind", ConstantValue("A"))
        assert evaluator.cost(pricey) > evaluator.cost(cheap)

    def test_end_state_cost_matches_explanation_cost(self):
        # Coherence requirement of Section 4.5: for end states the state cost
        # equals the cost of the explanation constructed from it.
        instance = running_example_instance()
        functions = reference_functions()
        state = SearchState.from_functions(instance.schema, functions)
        assert state.is_end_state
        evaluator = StateEvaluator(instance)
        explanation = explanation_from_functions(instance, functions)
        assert evaluator.cost(state) == explanation_cost(instance, explanation)

    def test_blocking_cache_returns_same_object(self, instance):
        evaluator = StateEvaluator(instance, cache_size=4)
        state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        first = evaluator.blocking(state)
        second = evaluator.blocking(state)
        assert first is second

    def test_cache_eviction(self, instance):
        evaluator = StateEvaluator(instance, cache_size=1)
        first_state = SearchState.empty(instance.schema).extend("kind", IDENTITY)
        second_state = SearchState.empty(instance.schema).extend("amount", Division(1000))
        first = evaluator.blocking(first_state)
        evaluator.blocking(second_state)
        assert evaluator.blocking(first_state) is not first

    def test_remember_blocking(self, instance):
        evaluator = StateEvaluator(instance)
        state = SearchState.empty(instance.schema)
        blocking = build_blocking(instance, state)
        evaluator.remember_blocking(state, blocking)
        assert evaluator.blocking(state) is blocking

    def test_invalid_alpha(self, instance):
        with pytest.raises(ValueError):
            StateEvaluator(instance, alpha=2.0)


class TestStartStates:
    def test_empty_strategy(self, instance):
        states = empty_start_states(instance)
        assert len(states) == 1
        assert states[0].n_assigned == 0

    def test_identity_strategy_one_state_per_attribute(self, instance):
        states = identity_start_states(instance)
        assert len(states) == instance.n_attributes
        for state in states:
            assert state.n_assigned == 1
            decided = state.decided_functions
            assert all(function.is_identity for function in decided.values())
        assigned = {state.decided_attributes[0] for state in states}
        assert assigned == set(instance.schema)

    def test_overlap_strategy_on_running_example(self):
        instance = running_example_instance()
        states = overlap_start_states(instance)
        assert len(states) == 1
        state = states[0]
        assert state.n_assigned >= 1
        # every pre-assigned attribute uses the identity
        assert all(function.is_identity for function in state.decided_functions.values())

    def test_overlap_strategy_falls_back_to_empty(self, instance):
        # With a tiny block-size cap every shared value is skipped, so no
        # identity attributes can be derived and H∅ is used instead.
        states = overlap_start_states(instance, max_block_size=0 + 1)
        assert len(states) == 1

    def test_dispatch_by_configuration(self, instance):
        assert len(start_states(instance, identity_configuration())) == instance.n_attributes
        assert len(start_states(instance, overlap_configuration())) == 1
        empty_config = AffidavitConfig(start_strategy="empty")
        assert start_states(instance, empty_config)[0].n_assigned == 0
