"""End-to-end HTTP round-trips against a live server on an ephemeral port.

Covers the acceptance criteria of the service subsystem: health checks,
>= 4 concurrent explain jobs completing with correct explanations, a
cache-hit-flagged repeat submission, DELETE cancellation mid-search, result
formats, and the error paths — all with stdlib ``urllib`` only.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import create_server

POLL_INTERVAL = 0.02


@pytest.fixture
def server():
    instance = create_server(workers=4)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown_service()
    thread.join(timeout=10.0)


@pytest.fixture
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def request(base_url: str, method: str, path: str, body=None):
    """(status, parsed-or-text body) of one HTTP exchange."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base_url + path, method=method, data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30.0) as response:
            raw = response.read().decode("utf-8")
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read().decode("utf-8")
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(raw)
    return status, raw


def wait_for_state(base_url: str, job_id: str, states, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, view = request(base_url, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if view["state"] in states:
            return view
        time.sleep(POLL_INTERVAL)
    raise AssertionError(f"job {job_id} never reached {states}")


def division_pair(divisor: int, rows: int = 6):
    source = "id,val\n" + "".join(f"{i},{i * 7 * divisor}\n" for i in range(1, rows + 1))
    target = "id,val\n" + "".join(f"{i},{i * 7}\n" for i in range(1, rows + 1))
    return source, target


def explain_body(divisor: int, **extra):
    source, target = division_pair(divisor)
    body = {"source_csv": source, "target_csv": target, "name": f"div{divisor}"}
    body.update(extra)
    return body


# --------------------------------------------------------------------- #
# health
# --------------------------------------------------------------------- #
def test_healthz(base_url):
    status, payload = request(base_url, "GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["workers"] == 4
    assert set(payload["jobs"]) == {"queued", "running", "done", "failed", "cancelled"}
    assert payload["cache"]["size"] == 0
    assert payload["uptime_seconds"] >= 0


# --------------------------------------------------------------------- #
# submit / poll / result
# --------------------------------------------------------------------- #
def test_explain_round_trip_json_sql_report(base_url):
    status, view = request(base_url, "POST", "/v1/explain", explain_body(100))
    assert status in (200, 202)
    assert view["cache_hit"] is False
    job_id = view["id"]

    wait_for_state(base_url, job_id, {"done"})
    status, result = request(base_url, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200
    assert result["cancelled"] is False
    assert result["cost"] <= result["trivial_cost"]
    function = result["explanation"]["functions"]["val"]
    assert function["meta"] == "division"
    assert float(function["parameters"][0]) == pytest.approx(100)

    status, script = request(base_url, "GET", f"/v1/jobs/{job_id}/result?format=sql")
    assert status == 200
    assert "UPDATE" in script and "div100" in script

    status, report = request(base_url, "GET", f"/v1/jobs/{job_id}/result?format=report")
    assert status == 200
    assert "div100" in report


def test_four_concurrent_jobs_complete(base_url):
    divisors = (2, 10, 100, 1000)
    job_ids = {}
    for divisor in divisors:
        status, view = request(base_url, "POST", "/v1/explain", explain_body(divisor))
        assert status in (200, 202)
        job_ids[divisor] = view["id"]

    for divisor, job_id in job_ids.items():
        wait_for_state(base_url, job_id, {"done"})
        status, result = request(base_url, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 200
        function = result["explanation"]["functions"]["val"]
        assert function["meta"] == "division"
        assert float(function["parameters"][0]) == pytest.approx(divisor)

    status, listing = request(base_url, "GET", "/v1/jobs")
    assert status == 200
    assert len(listing["jobs"]) == len(divisors)


def test_repeat_submission_is_cache_hit(base_url):
    body = explain_body(50)
    status, first = request(base_url, "POST", "/v1/explain", body)
    assert status in (200, 202)
    wait_for_state(base_url, first["id"], {"done"})

    status, second = request(base_url, "POST", "/v1/explain", body)
    assert status == 200                      # served straight from the cache
    assert second["cache_hit"] is True
    assert second["state"] == "done"
    assert second["id"] != first["id"]
    assert second["idempotency_key"] == first["idempotency_key"]

    status, health = request(base_url, "GET", "/healthz")
    assert health["cache"]["hits"] == 1

    # The cached job serves results in every format too.
    status, result = request(base_url, "GET", f"/v1/jobs/{second['id']}/result")
    assert status == 200
    assert result["cache_hit"] is True


def test_different_config_is_not_a_cache_hit(base_url):
    status, first = request(base_url, "POST", "/v1/explain", explain_body(60))
    wait_for_state(base_url, first["id"], {"done"})
    status, second = request(
        base_url, "POST", "/v1/explain",
        explain_body(60, overrides={"seed": 99}),
    )
    assert second["cache_hit"] is False


# --------------------------------------------------------------------- #
# cancellation
# --------------------------------------------------------------------- #
def test_delete_cancels_running_job_mid_search(base_url):
    # One second of sleep per expansion: the job is guaranteed to still be
    # mid-search when the DELETE lands right after the first progress report.
    body = explain_body(100, throttle_seconds=1.0, use_cache=False)
    status, view = request(base_url, "POST", "/v1/explain", body)
    assert status == 202
    job_id = view["id"]

    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, view = request(base_url, "GET", f"/v1/jobs/{job_id}")
        if view["progress"] is not None:
            break
        time.sleep(POLL_INTERVAL)
    assert view["state"] == "running"

    status, payload = request(base_url, "DELETE", f"/v1/jobs/{job_id}")
    assert status == 202
    assert payload["cancelling"] is True

    final = wait_for_state(base_url, job_id, {"cancelled"})
    assert final["state"] == "cancelled"

    # A cancelled search never populates the idempotency cache.
    status, health = request(base_url, "GET", "/healthz")
    assert health["cache"]["size"] == 0


def test_delete_finished_job_conflicts(base_url):
    status, view = request(base_url, "POST", "/v1/explain", explain_body(100))
    wait_for_state(base_url, view["id"], {"done"})
    status, payload = request(base_url, "DELETE", f"/v1/jobs/{view['id']}")
    assert status == 409
    assert payload["cancelling"] is False


# --------------------------------------------------------------------- #
# error paths
# --------------------------------------------------------------------- #
def test_unknown_routes_and_jobs_are_404(base_url):
    assert request(base_url, "GET", "/nope")[0] == 404
    assert request(base_url, "GET", "/v1/jobs/job-missing")[0] == 404
    assert request(base_url, "GET", "/v1/jobs/job-missing/result")[0] == 404
    assert request(base_url, "DELETE", "/v1/jobs/job-missing")[0] == 404
    assert request(base_url, "POST", "/v1/nope", {})[0] == 404


def test_validation_errors_are_400(base_url):
    status, payload = request(base_url, "POST", "/v1/explain", {})
    assert status == 400 and "error" in payload
    status, _ = request(base_url, "POST", "/v1/explain",
                        {"source_csv": "a\n1\n"})          # missing target
    assert status == 400
    status, _ = request(base_url, "POST", "/v1/explain",
                        explain_body(2, config="bogus"))
    assert status == 400
    status, _ = request(base_url, "POST", "/v1/explain",
                        explain_body(2, overrides={"alpha": 7.0}))
    assert status == 400
    status, _ = request(base_url, "POST", "/v1/explain",
                        explain_body(2, unknown_field=1))
    assert status == 400
    status, _ = request(
        base_url, "POST", "/v1/explain",
        {"source_csv": "a,b\n1,2\n", "target_csv": "c\n3\n"},  # schema mismatch
    )
    assert status == 400


def test_wrong_typed_fields_are_400_not_dropped_connections(base_url):
    cases = [
        {"source_csv": 123, "target_csv": "id\n1\n"},
        {"source_csv": "id\n1\n", "target_csv": ["id", "1"]},
        {"source_path": 7, "target_path": 8},
        {"source_csv": "id\n1\n", "target_csv": "id\n1\n", "name": 5},
        {"source_csv": "id\n1\n", "target_csv": "id\n1\n", "use_cache": "yes"},
        {"source_csv": "id\n1\n", "target_csv": "id\n1\n",
         "throttle_seconds": "soon"},
    ]
    for body in cases:
        status, payload = request(base_url, "POST", "/v1/explain", body)
        assert status == 400, body
        assert "error" in payload


def test_result_of_running_job_conflicts(base_url):
    body = explain_body(100, throttle_seconds=1.0, use_cache=False,
                        name="slowpoke")
    status, view = request(base_url, "POST", "/v1/explain", body)
    job_id = view["id"]
    status, payload = request(base_url, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 409
    assert payload["state"] in ("queued", "running")
    request(base_url, "DELETE", f"/v1/jobs/{job_id}")   # don't leak the worker
    wait_for_state(base_url, job_id, {"cancelled", "done"})


def test_unknown_result_format_is_400(base_url):
    status, view = request(base_url, "POST", "/v1/explain", explain_body(100))
    wait_for_state(base_url, view["id"], {"done"})
    status, _ = request(base_url, "GET",
                        f"/v1/jobs/{view['id']}/result?format=yaml")
    assert status == 400


# --------------------------------------------------------------------- #
# the repro.api wire format
# --------------------------------------------------------------------- #
def test_unknown_schema_version_is_400(base_url):
    body = explain_body(2, schema_version="affidavit.request/v99")
    status, payload = request(base_url, "POST", "/v1/explain", body)
    assert status == 400
    assert "schema_version" in payload["error"]


def test_declared_schema_version_is_accepted(base_url):
    body = explain_body(4, schema_version="affidavit.request/v1")
    status, view = request(base_url, "POST", "/v1/explain", body)
    assert status in (200, 202)
    wait_for_state(base_url, view["id"], {"done"})


def test_functions_field_restricts_the_pool(base_url):
    body = explain_body(25, functions=["identity", "division"])
    status, view = request(base_url, "POST", "/v1/explain", body)
    assert status in (200, 202)
    wait_for_state(base_url, view["id"], {"done"})
    status, result = request(base_url, "GET", f"/v1/jobs/{view['id']}/result")
    assert status == 200
    assert result["provenance"]["registry"] == ["identity", "division"]
    assert result["explanation"]["functions"]["val"]["meta"] == "division"


def test_unknown_function_name_is_400(base_url):
    status, payload = request(
        base_url, "POST", "/v1/explain", explain_body(2, functions=["warp"])
    )
    assert status == 400
    assert "warp" in payload["error"]


def test_unknown_engine_is_400(base_url):
    status, _ = request(
        base_url, "POST", "/v1/explain", explain_body(2, engine="quantum")
    )
    assert status == 400


def test_cache_hit_is_key_order_independent(base_url):
    body = explain_body(75, overrides={"seed": 4, "beta": 2})
    status, first = request(base_url, "POST", "/v1/explain", body)
    assert status in (200, 202)
    wait_for_state(base_url, first["id"], {"done"})

    shuffled = dict(reversed(list(body.items())))
    shuffled["overrides"] = dict(reversed(list(body["overrides"].items())))
    status, second = request(base_url, "POST", "/v1/explain", shuffled)
    assert status == 200
    assert second["cache_hit"] is True
    assert second["idempotency_key"] == first["idempotency_key"]


def test_result_payload_carries_timings_and_provenance(base_url):
    status, view = request(base_url, "POST", "/v1/explain", explain_body(30))
    wait_for_state(base_url, view["id"], {"done"})
    status, result = request(base_url, "GET", f"/v1/jobs/{view['id']}/result")
    assert status == 200
    assert result["timings"]["search_seconds"] >= 0
    assert result["timings"]["total_seconds"] >= result["timings"]["search_seconds"]
    provenance = result["provenance"]
    assert provenance["engine"] == "columnar"
    assert provenance["base_config"] == "hid"
    assert provenance["n_source_records"] == 6
    # unbudgeted runs are plain full searches; the flat fields mirror the
    # provenance so budget-aware clients need not parse the nested dict
    assert result["tier"] == provenance["tier"] == "full"
    assert result["confidence"] == provenance["confidence"] == "exact"


def test_budgeted_v2_request_reports_the_answering_tier(base_url):
    body = explain_body(
        40, schema_version="affidavit.request/v2", budget=60_000
    )
    status, view = request(base_url, "POST", "/v1/explain", body)
    assert status in (200, 202)
    wait_for_state(base_url, view["id"], {"done"})
    status, result = request(base_url, "GET", f"/v1/jobs/{view['id']}/result")
    assert status == 200
    assert result["tier"] == "full"
    assert result["confidence"] == "exact"
    assert result["provenance"]["api_version"] == "affidavit.request/v2"
    walked = {attempt["tier"]: attempt["status"] for attempt in result["tiers"]}
    assert walked["full"] == "answered"
    function = result["explanation"]["functions"]["val"]
    assert function["meta"] == "division"

    status, text = request(base_url, "GET", "/metrics")
    assert status == 200
    assert "repro_jobs_answered_by_tier_total" in text


def test_v1_payload_must_not_smuggle_budget_fields(base_url):
    # No schema_version tag means v1 — budget/strategy are a clean 400,
    # not a silently ignored field or a 500.
    status, payload = request(base_url, "POST", "/v1/explain",
                              explain_body(40, budget=50))
    assert status == 400
    assert "schema_version" in payload["error"]


# --------------------------------------------------------------------- #
# request-body hardening: size caps, truncation, malformed framing
# --------------------------------------------------------------------- #
@pytest.fixture
def capped_server():
    """A server with a deliberately tiny body cap (2 KiB)."""
    instance = create_server(workers=1, max_body_bytes=2048)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown_service()
    thread.join(timeout=10.0)


@pytest.fixture
def capped_url(capped_server):
    host, port = capped_server.server_address[:2]
    return f"http://{host}:{port}"


def raw_exchange(server, head: str, body: bytes = b"",
                 half_close: bool = False):
    """One hand-rolled HTTP exchange over a raw socket.

    *head* is the request line plus headers (``\\r\\n``-joined, no trailing
    blank line).  With *half_close* the write side is shut down after the
    (possibly deliberately short) body, which the server sees as EOF.
    Returns ``(status, parsed JSON body or None)``.
    """
    import socket

    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(head.encode("ascii") + b"\r\n\r\n" + body)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if b"\r\n\r\n" in b"".join(chunks):
                header_blob, _, rest = b"".join(chunks).partition(b"\r\n\r\n")
                headers = header_blob.decode("latin-1").split("\r\n")
                length = 0
                for line in headers[1:]:
                    name, _, value = line.partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                while len(rest) < length:
                    more = sock.recv(65536)
                    if not more:
                        break
                    rest += more
                status = int(headers[0].split()[1])
                payload = json.loads(rest.decode("utf-8")) if rest else None
                return status, payload
    raise AssertionError("no HTTP response received")


def test_oversized_body_is_rejected_with_413(capped_url, capped_server):
    huge_csv = "id,val\n" + "".join(f"{i},{i}\n" for i in range(1000))
    status, payload = request(capped_url, "POST", "/v1/explain",
                              {"source_csv": huge_csv, "target_csv": huge_csv})
    assert status == 413
    assert payload["code"] == "body_too_large"
    assert "2048" in payload["error"]


def test_body_just_under_the_cap_is_processed(capped_url):
    status, payload = request(capped_url, "POST", "/v1/explain",
                              explain_body(40))
    assert status in (200, 202)
    assert "id" in payload


def test_invalid_json_body_is_a_structured_400(base_url, server):
    body = b"{ definitely not json"
    head = (
        "POST /v1/explain HTTP/1.1\r\nHost: test\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}"
    )
    status, payload = raw_exchange(server, head, body)
    assert status == 400
    assert payload["code"] == "invalid_json"


def test_empty_body_is_a_structured_400(server):
    head = ("POST /v1/explain HTTP/1.1\r\nHost: test\r\n"
            "Content-Length: 0")
    status, payload = raw_exchange(server, head)
    assert status == 400
    assert payload["code"] == "empty_body"


def test_malformed_content_length_is_a_structured_400(server):
    head = ("POST /v1/explain HTTP/1.1\r\nHost: test\r\n"
            "Content-Length: banana")
    status, payload = raw_exchange(server, head)
    assert status == 400
    assert payload["code"] == "bad_content_length"


def test_truncated_body_is_a_structured_400(server):
    # Promise 500 bytes, deliver 20, half-close: the server must answer
    # with a clean 400, not hang or crash with a JSON traceback.
    body = b'{"source_csv": "A\\n'
    head = (
        "POST /v1/explain HTTP/1.1\r\nHost: test\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: 500"
    )
    status, payload = raw_exchange(server, head, body, half_close=True)
    assert status == 400
    assert payload["code"] == "truncated_body"


def test_valid_json_with_malformed_csv_is_400_not_500(base_url):
    # A header with an empty attribute name crashes CSV schema parsing;
    # that must surface as request validation, never as a 500.
    status, payload = request(base_url, "POST", "/v1/explain", {
        "source_csv": "A,,B\n1,2,3\n",
        "target_csv": "A,,B\n1,2,3\n",
    })
    assert status == 400
    assert payload["code"] == "invalid_request"
    assert "error" in payload


def test_mismatched_snapshot_schemas_are_400_not_500(base_url):
    status, payload = request(base_url, "POST", "/v1/explain", {
        "source_csv": "A,B\n1,2\n",
        "target_csv": "C\n9\n",
    })
    assert status == 400
    assert "error" in payload


# --------------------------------------------------------------------- #
# the error envelope (affidavit.error/v1)
# --------------------------------------------------------------------- #
def assert_envelope(payload, code=None):
    assert payload["schema_version"] == "affidavit.error/v1"
    assert isinstance(payload["code"], str) and payload["code"]
    assert isinstance(payload["message"], str) and payload["message"]
    assert payload["error"] == payload["message"]  # legacy alias
    if code is not None:
        assert payload["code"] == code


def test_every_error_route_answers_the_envelope(base_url):
    status, payload = request(base_url, "GET", "/nope")
    assert status == 404
    assert_envelope(payload, "not_found")

    status, payload = request(base_url, "GET", "/v1/jobs/job-missing")
    assert status == 404
    assert_envelope(payload, "unknown_job")

    status, payload = request(base_url, "POST", "/v1/explain", {})
    assert status == 400
    assert_envelope(payload, "invalid_request")

    status, view = request(base_url, "POST", "/v1/explain", explain_body(900))
    job_id = view["id"]
    status, payload = request(base_url, "GET",
                              f"/v1/jobs/{job_id}/result?format=yaml")
    assert status == 400
    assert_envelope(payload, "unknown_format")

    wait_for_state(base_url, job_id, {"done"})
    status, payload = request(base_url, "DELETE", f"/v1/jobs/{job_id}")
    assert status == 409
    assert_envelope(payload, "job_already_finished")
    assert payload["state"] == "done"


def test_result_not_ready_is_enveloped_409(base_url):
    body = explain_body(901, throttle_seconds=0.5, use_cache=False)
    status, view = request(base_url, "POST", "/v1/explain", body)
    job_id = view["id"]
    status, payload = request(base_url, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 409
    assert_envelope(payload, "result_not_ready")
    assert payload["state"] in ("queued", "running")
    request(base_url, "DELETE", f"/v1/jobs/{job_id}")
    wait_for_state(base_url, job_id, {"cancelled", "done"})


def test_failed_job_result_is_enveloped_500(base_url, server):
    # No wire payload can fail a job mid-run, so inject the failure through
    # the server's own manager: a progress callback that explodes.
    from repro.core import identity_configuration
    from repro.dataio import read_csv_text

    def explode(progress) -> None:
        raise RuntimeError("instrumentation exploded")

    config = identity_configuration().with_overrides(progress_callback=explode)
    source = read_csv_text("id,val\n1,100\n2,200\n")
    target = read_csv_text("id,val\n1,1\n2,2\n")
    job = server.manager.submit(source, target, config=config, use_cache=False)
    assert job.wait(30.0)
    assert job.state.value == "failed"

    status, payload = request(base_url, "GET", f"/v1/jobs/{job.id}/result")
    assert status == 500
    assert_envelope(payload, "job_failed")
    assert payload["state"] == "failed"


# --------------------------------------------------------------------- #
# jobs listing: state filter + cursor pagination
# --------------------------------------------------------------------- #
def test_jobs_listing_filters_and_paginates(base_url):
    ids = []
    for divisor in (21, 22, 23, 24, 25):
        status, view = request(base_url, "POST", "/v1/explain",
                               explain_body(divisor))
        assert status in (200, 202)
        ids.append(view["id"])
    for job_id in ids:
        wait_for_state(base_url, job_id, {"done"})

    status, listing = request(base_url, "GET", "/v1/jobs")
    assert status == 200
    assert [v["id"] for v in listing["jobs"]] == ids  # submission order
    assert listing["next_cursor"] is None

    # Pages of two, chased through next_cursor.
    seen = []
    cursor = ""
    for _ in range(10):
        suffix = f"&cursor={cursor}" if cursor else ""
        status, page = request(base_url, "GET", f"/v1/jobs?limit=2{suffix}")
        assert status == 200
        assert len(page["jobs"]) <= 2
        seen.extend(v["id"] for v in page["jobs"])
        if page["next_cursor"] is None:
            break
        cursor = page["next_cursor"]
    assert seen == ids

    status, done = request(base_url, "GET", "/v1/jobs?state=done")
    assert status == 200
    assert [v["id"] for v in done["jobs"]] == ids
    status, cancelled = request(base_url, "GET", "/v1/jobs?state=cancelled")
    assert cancelled["jobs"] == []


def test_jobs_listing_rejects_bad_parameters(base_url):
    status, payload = request(base_url, "GET", "/v1/jobs?state=exploded")
    assert status == 400
    assert_envelope(payload, "invalid_state")
    status, payload = request(base_url, "GET", "/v1/jobs?limit=0")
    assert status == 400
    assert_envelope(payload, "invalid_limit")
    status, payload = request(base_url, "GET", "/v1/jobs?limit=nope")
    assert status == 400
    assert_envelope(payload, "invalid_limit")
    status, payload = request(base_url, "GET", "/v1/jobs?cursor=banana")
    assert status == 400
    assert_envelope(payload, "invalid_cursor")


def test_job_view_carries_store_hit_and_priority(base_url):
    status, view = request(base_url, "POST", "/v1/explain",
                           explain_body(31, priority=3))
    assert status in (200, 202)
    assert view["priority"] == 3
    assert view["store_hit"] is False
    wait_for_state(base_url, view["id"], {"done"})
