"""Failure-injection tests: the search must stay robust on degenerate inputs.

The paper's protocol always produces "reasonable" instances; downstream users
will not.  These tests feed the engine pathological snapshots — empty
attributes, constant columns, heavy duplication, completely shuffled content,
missing-value floods — and require that it still terminates with a *valid*
explanation that is never worse than the trivial one.
"""


from repro.core import (
    Affidavit,
    ProblemInstance,
    identity_configuration,
    overlap_configuration,
    trivial_explanation_cost,
)
from repro.dataio import Schema, Table
from repro.functions import default_registry


def run_both_configs(instance):
    results = []
    for config in (identity_configuration(), overlap_configuration()):
        result = Affidavit(config).explain(instance)
        result.explanation.validate(instance)
        assert result.cost <= trivial_explanation_cost(instance)
        results.append(result)
    return results


class TestDegenerateShapes:
    def test_single_record_snapshots(self):
        schema = Schema(["a", "b"])
        instance = ProblemInstance(
            source=Table(schema, [("1", "x")]),
            target=Table(schema, [("2", "x")]),
        )
        run_both_configs(instance)

    def test_empty_source_snapshot(self):
        schema = Schema(["a"])
        instance = ProblemInstance(
            source=Table(schema),
            target=Table(schema, [("1",), ("2",)]),
        )
        for result in run_both_configs(instance):
            assert result.explanation.n_inserted == 2

    def test_both_snapshots_empty(self):
        schema = Schema(["a", "b"])
        instance = ProblemInstance(source=Table(schema), target=Table(schema))
        for result in run_both_configs(instance):
            assert result.cost == 0

    def test_all_cells_identical(self):
        schema = Schema(["a", "b"])
        rows = [("x", "y")] * 25
        instance = ProblemInstance(
            source=Table(schema, rows), target=Table(schema, rows)
        )
        for result in run_both_configs(instance):
            assert result.explanation.n_deleted == 0
            assert result.explanation.n_inserted == 0

    def test_massive_duplication_with_surplus(self):
        schema = Schema(["a"])
        instance = ProblemInstance(
            source=Table(schema, [("dup",)] * 30),
            target=Table(schema, [("dup",)] * 20),
        )
        for result in run_both_configs(instance):
            assert result.explanation.core_size == 20
            assert result.explanation.n_deleted == 10


class TestPathologicalContent:
    def test_missing_value_flood(self):
        schema = Schema(["a", "b", "c"])
        source_rows = [("?", "?", str(i % 4)) for i in range(40)]
        target_rows = [("?", "?", str((i + 1) % 4)) for i in range(40)]
        instance = ProblemInstance(
            source=Table(schema, source_rows), target=Table(schema, target_rows)
        )
        run_both_configs(instance)

    def test_disjoint_value_universes(self):
        schema = Schema(["a", "b"])
        source_rows = [(f"s{i}", f"u{i % 3}") for i in range(30)]
        target_rows = [(f"t{i}", f"w{i % 3}") for i in range(30)]
        instance = ProblemInstance(
            source=Table(schema, source_rows), target=Table(schema, target_rows)
        )
        run_both_configs(instance)

    def test_extremely_long_cell_values(self):
        schema = Schema(["a", "b"])
        long_value = "x" * 5_000
        source_rows = [(long_value + str(i), "k") for i in range(10)]
        target_rows = [("PREFIX-" + long_value + str(i), "k") for i in range(10)]
        instance = ProblemInstance(
            source=Table(schema, source_rows), target=Table(schema, target_rows)
        )
        results = run_both_configs(instance)
        # the systematic prefixing should be learned by at least one config
        assert any(
            results[i].explanation.functions["a"].meta_name in {"prefixing", "prefix_replacement"}
            for i in range(2)
        )

    def test_restricted_registry_still_terminates(self):
        # With only identity available, the search can only explain unchanged
        # records; everything else must be labelled deleted/inserted.
        registry = default_registry().subset(["identity"])
        schema = Schema(["a", "b"])
        source_rows = [(str(i), "same") for i in range(20)]
        target_rows = [(str(i + 100), "same") for i in range(20)]
        instance = ProblemInstance(
            source=Table(schema, source_rows),
            target=Table(schema, target_rows),
            registry=registry,
        )
        result = Affidavit(identity_configuration()).explain(instance)
        result.explanation.validate(instance)
        assert result.cost <= trivial_explanation_cost(instance)

    def test_numeric_overflow_like_values(self):
        schema = Schema(["big"])
        source_rows = [(str((10**27 + i) * 1000),) for i in range(15)]
        target_rows = [(str(10**27 + i),) for i in range(15)]
        instance = ProblemInstance(
            source=Table(schema, source_rows), target=Table(schema, target_rows)
        )
        result = Affidavit(identity_configuration()).explain(instance)
        result.explanation.validate(instance)
        assert result.explanation.core_size == 15
