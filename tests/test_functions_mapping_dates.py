"""Unit tests for value mappings, boolean negation and date conversion."""

import pytest

from repro.functions import (
    BOOLEAN_NEGATION,
    BooleanNegationMeta,
    DateConversion,
    DateConversionMeta,
    SingleValueMappingMeta,
    ValueMapping,
    detect_formats,
    parse_date,
)


class TestValueMapping:
    def test_apply_known_and_unknown_keys(self):
        mapping = ValueMapping({"a": "x", "b": "y"})
        assert mapping.apply("a") == "x"
        assert mapping.apply("c") is None

    def test_description_length_counts_two_per_entry(self):
        # Matches the worked example of Section 3.1: 13 entries cost 26.
        mapping = ValueMapping({str(i): str(i + 1) for i in range(13)})
        assert mapping.description_length == 26

    def test_identity_like_entries_still_counted(self):
        mapping = ValueMapping({"0001": "0001", "0002": "0005"})
        assert mapping.description_length == 4

    def test_size(self):
        assert ValueMapping({"a": "b"}).size == 1

    def test_restricted_to(self):
        mapping = ValueMapping({"a": "1", "b": "2", "c": "3"})
        restricted = mapping.restricted_to(["a", "c", "unknown"])
        assert restricted.entries == {"a": "1", "c": "3"}

    def test_merged_with_other_wins_conflicts(self):
        merged = ValueMapping({"a": "1", "b": "2"}).merged_with(ValueMapping({"b": "9", "c": "3"}))
        assert merged.entries == {"a": "1", "b": "9", "c": "3"}

    def test_equality_is_content_based(self):
        assert ValueMapping({"a": "1", "b": "2"}) == ValueMapping({"b": "2", "a": "1"})
        assert ValueMapping({"a": "1"}) != ValueMapping({"a": "2"})

    def test_single_entry_meta(self):
        candidates = list(SingleValueMappingMeta().induce("a", "b"))
        assert len(candidates) == 1
        assert candidates[0].apply("a") == "b"
        assert not list(SingleValueMappingMeta().induce("a", "a"))


class TestBooleanNegation:
    def test_flips_zero_and_one(self):
        assert BOOLEAN_NEGATION.apply("0") == "1"
        assert BOOLEAN_NEGATION.apply("1") == "0"

    def test_identity_on_other_values(self):
        assert BOOLEAN_NEGATION.apply("-") == "-"
        assert BOOLEAN_NEGATION.apply("c1") == "c1"

    def test_zero_description_length(self):
        assert BOOLEAN_NEGATION.description_length == 0

    def test_meta_requires_visible_flip(self):
        meta = BooleanNegationMeta()
        assert list(meta.induce("0", "1")) == [BOOLEAN_NEGATION]
        assert not list(meta.induce("-", "-"))
        assert not list(meta.induce("0", "0"))


class TestDateFormats:
    def test_detect_formats(self):
        assert "yyyymmdd" in detect_formats("20190931".replace("31", "30"))
        assert "yyyy-mm-dd" in detect_formats("2019-09-30")
        assert detect_formats("not a date") == []

    def test_detect_rejects_invalid_calendar_dates(self):
        assert detect_formats("20191345") == []

    def test_parse_date(self):
        parsed = parse_date("2019-03-05", "yyyy-mm-dd")
        assert (parsed.year, parsed.month, parsed.day) == (2019, 3, 5)
        assert parse_date("2019-03-05", "yyyymmdd") is None
        assert parse_date("2019-03-05", "unknown-format") is None


class TestDateConversion:
    def test_reformat(self):
        function = DateConversion("mon dd yyyy", "yyyymmdd")
        assert function.apply("Sep 30 2019") == "20190930"

    def test_non_matching_values_pass_through(self):
        function = DateConversion("yyyy-mm-dd", "yyyymmdd")
        assert function.apply("99991231") == "99991231"
        assert function.apply("n/a") == "n/a"

    def test_description_length(self):
        assert DateConversion("yyyymmdd", "yyyy-mm-dd").description_length == 2

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            DateConversion("nope", "yyyymmdd")
        with pytest.raises(ValueError):
            DateConversion("yyyymmdd", "yyyymmdd")

    def test_meta_generates_consistent_candidates(self):
        candidates = list(DateConversionMeta().induce("2019-09-30", "20190930"))
        assert DateConversion("yyyy-mm-dd", "yyyymmdd") in candidates
        for candidate in candidates:
            assert candidate.covers("2019-09-30", "20190930")

    def test_meta_ambiguous_example_yields_multiple_candidates(self):
        # day and month are both <= 12, so dd/mm and mm/dd both fit.
        candidates = list(DateConversionMeta().induce("03/04/2019", "20190403"))
        assert len(candidates) >= 1

    def test_meta_skips_non_dates(self):
        assert not list(DateConversionMeta().induce("abc", "20190930"))
        assert not list(DateConversionMeta().induce("20190930", "20190930"))
