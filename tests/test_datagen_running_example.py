"""Consistency tests of the hard-coded running-example data (Figure 1).

These tests guard the fixture itself: the snapshot contents, the reference
alignment labels and the reference functions must stay mutually consistent,
because several other test modules and the examples build on them.
"""


from repro.datagen.running_example import (
    REFERENCE_ALIGNMENT_LABELS,
    REFERENCE_DELETED_LABELS,
    REFERENCE_INSERTED_LABELS,
    RUNNING_EXAMPLE_SCHEMA,
    reference_alignment,
    reference_functions,
    running_example_instance,
    source_table,
    target_table,
)
from repro.functions import ValueMapping


class TestSnapshotData:
    def test_row_counts(self):
        assert source_table().n_rows == 17
        assert target_table().n_rows == 16

    def test_schema_shared(self):
        assert source_table().schema == RUNNING_EXAMPLE_SCHEMA
        assert target_table().schema == RUNNING_EXAMPLE_SCHEMA

    def test_record_labels_are_unique(self):
        assert len(set(source_table().column_view("ID1"))) == 17
        assert len(set(target_table().column_view("ID1"))) == 16

    def test_source_units_are_usd_targets_are_k_dollar(self):
        assert set(source_table().column_view("Unit")) == {"USD"}
        assert set(target_table().column_view("Unit")) == {"k $"}

    def test_id2_is_a_running_sequence_in_both_snapshots(self):
        assert sorted(source_table().column_view("ID2")) == [
            f"{i:04d}" for i in range(17)
        ]
        assert sorted(target_table().column_view("ID2")) == [
            f"{i:04d}" for i in range(16)
        ]


class TestReferenceData:
    def test_alignment_covers_13_pairs(self):
        assert len(REFERENCE_ALIGNMENT_LABELS) == 13
        assert len(reference_alignment()) == 13

    def test_labels_partition_the_snapshots(self):
        aligned_sources = set(REFERENCE_ALIGNMENT_LABELS)
        aligned_targets = set(REFERENCE_ALIGNMENT_LABELS.values())
        assert aligned_sources | set(REFERENCE_DELETED_LABELS) == set(
            source_table().column_view("ID1")
        )
        assert aligned_targets | set(REFERENCE_INSERTED_LABELS) == set(
            target_table().column_view("ID1")
        )
        assert not aligned_sources & set(REFERENCE_DELETED_LABELS)
        assert not aligned_targets & set(REFERENCE_INSERTED_LABELS)

    def test_reference_functions_map_every_aligned_pair(self):
        instance = running_example_instance()
        functions = reference_functions()
        attributes = instance.schema.attributes
        for source_id, target_id in reference_alignment().items():
            source_row = instance.source.row(source_id)
            target_row = instance.target.row(target_id)
            for attribute, source_cell, target_cell in zip(attributes, source_row, target_row):
                assert functions[attribute].apply(source_cell) == target_cell

    def test_key_functions_are_value_mappings_with_13_entries(self):
        functions = reference_functions()
        assert isinstance(functions["ID1"], ValueMapping)
        assert isinstance(functions["ID2"], ValueMapping)
        assert functions["ID1"].size == 13
        assert functions["ID2"].size == 13

    def test_function_description_lengths_sum_to_56(self):
        # Section 3.1: L(F^E1) = 13·2 + 13·2 + 2 + 0 + 1 + 1 + 0 = 56.
        functions = reference_functions()
        total = sum(functions[a].description_length for a in RUNNING_EXAMPLE_SCHEMA)
        assert total == 56

    def test_instance_uses_default_registry(self):
        instance = running_example_instance()
        assert "division" in instance.registry
        assert "prefix_replacement" in instance.registry
