"""Job lifecycle, cooperative cancellation and the core search hooks."""

from __future__ import annotations

import threading

import pytest

from repro.core import Affidavit, SearchProgress, identity_configuration
from repro.dataio import read_csv_text
from repro.service import JobManager, JobNotFound, JobState


@pytest.fixture
def pair():
    source = read_csv_text(
        "id,name,val\n1,alpha,100\n2,beta,200\n3,gamma,300\n4,delta,400\n"
    )
    target = read_csv_text(
        "id,name,val\n1,ALPHA,1\n2,BETA,2\n3,GAMMA,3\n4,DELTA,4\n"
    )
    return source, target


# --------------------------------------------------------------------- #
# core hooks (the seam the job layer builds on)
# --------------------------------------------------------------------- #
def test_progress_callback_fires_per_expansion(running_example):
    seen = []
    config = identity_configuration(max_expansions=50).with_overrides(
        progress_callback=seen.append
    )
    result = Affidavit(config).explain(running_example)
    assert result.cancelled is False
    assert len(seen) == result.expansions
    assert all(isinstance(p, SearchProgress) for p in seen)
    expansions = [p.expansions for p in seen]
    assert expansions == sorted(expansions)
    assert expansions[-1] == result.expansions


def test_should_stop_cancels_immediately(running_example):
    config = identity_configuration().with_overrides(should_stop=lambda: True)
    result = Affidavit(config).explain(running_example)
    assert result.cancelled is True
    assert result.expansions == 0
    # The forced finalisation must still produce a valid, bounded explanation.
    assert result.cost <= result.trivial_cost


def test_should_stop_mid_search_keeps_partial_progress(running_example):
    calls = {"n": 0}

    def stop_after_two() -> bool:
        calls["n"] += 1
        return calls["n"] > 2

    config = identity_configuration().with_overrides(should_stop=stop_after_two)
    result = Affidavit(config).explain(running_example)
    assert result.cancelled is True
    assert result.cost <= result.trivial_cost


def test_observer_configs_compare_equal():
    plain = identity_configuration()
    observed = identity_configuration().with_overrides(
        progress_callback=lambda p: None, should_stop=lambda: False
    )
    assert plain == observed
    assert hash(plain) == hash(observed)


# --------------------------------------------------------------------- #
# job lifecycle
# --------------------------------------------------------------------- #
def test_job_reaches_done_with_result(pair):
    source, target = pair
    with JobManager(workers=2) as manager:
        job = manager.submit(source, target, name="lifecycle")
        assert job.wait(30.0)
        assert job.state is JobState.DONE
        assert job.cache_hit is False
        assert job.error is None
        assert job.started_at is not None
        assert job.finished_at is not None
        assert job.result is not None
        assert job.result.cost <= job.result.trivial_cost
        functions = job.result.explanation.functions
        assert functions["name"].meta_name == "uppercasing"
        assert functions["val"].meta_name == "division"


def test_repeated_submission_hits_cache(pair):
    source, target = pair
    with JobManager(workers=1) as manager:
        first = manager.submit(source, target)
        assert first.wait(30.0)
        second = manager.submit(source, target)
        assert second.state is JobState.DONE
        assert second.cache_hit is True
        assert second.result is first.result
        assert manager.cache.stats().hits == 1


def test_published_result_carries_clean_config(pair):
    """The manager's observer wrappers (which close over the job and its
    tables) must not leak into the stored/cached result."""
    source, target = pair
    config = identity_configuration()
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target, config=config)
        assert job.wait(30.0)
        assert job.result.config == config
        assert job.result.config.should_stop is None
        assert job.result.config.progress_callback is None
        cached = manager.cache.get(job.key)
        assert cached.config.should_stop is None


def test_terminal_jobs_are_pruned_beyond_retention_bound(pair):
    source, target = pair
    with JobManager(workers=1, max_retained_jobs=3) as manager:
        jobs = []
        for i in range(5):
            job = manager.submit(source, target, name=f"j{i}", use_cache=False)
            assert job.wait(30.0)
            jobs.append(job)
        retained = {j.id for j in manager.jobs()}
        assert len(retained) <= 3
        assert jobs[-1].id in retained          # newest survives
        assert jobs[0].id not in retained       # oldest terminal evicted
        with pytest.raises(JobNotFound):
            manager.get(jobs[0].id)


def test_cache_can_be_bypassed(pair):
    source, target = pair
    with JobManager(workers=1) as manager:
        first = manager.submit(source, target)
        assert first.wait(30.0)
        second = manager.submit(source, target, use_cache=False)
        assert second.wait(30.0)
        assert second.cache_hit is False


def test_schema_mismatch_rejected_at_submit(pair):
    source, _ = pair
    other_schema = read_csv_text("a,b\n1,2\n")
    with JobManager(workers=1) as manager:
        with pytest.raises(Exception):
            # Schema mismatch is rejected at submission time, not in a worker.
            manager.submit(source, other_schema)


def test_failing_search_marks_job_failed(pair):
    source, target = pair

    def explode(_: SearchProgress) -> None:
        raise RuntimeError("observer exploded")

    config = identity_configuration().with_overrides(progress_callback=explode)
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target, config=config, use_cache=False)
        assert job.wait(30.0)
        assert job.state is JobState.FAILED
        assert "observer exploded" in job.error
        assert job.result is None
        assert len(manager.cache) == 0


def test_unknown_job_raises(pair):
    with JobManager(workers=1) as manager:
        with pytest.raises(JobNotFound):
            manager.get("job-nope")
        with pytest.raises(JobNotFound):
            manager.cancel("job-nope")


def test_counts_and_jobs_listing(pair):
    source, target = pair
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target)
        assert job.wait(30.0)
        assert [j.id for j in manager.jobs()] == [job.id]
        counts = manager.counts()
        assert counts["done"] == 1
        assert sum(counts.values()) == 1


def test_submit_after_shutdown_is_rejected(pair):
    source, target = pair
    manager = JobManager(workers=1)
    manager.shutdown()
    with pytest.raises(RuntimeError):
        manager.submit(source, target)


# --------------------------------------------------------------------- #
# cancellation
# --------------------------------------------------------------------- #
def test_cancel_running_job_mid_search(pair):
    """Deterministic mid-search cancel: the job's own progress callback blocks
    the search until the test has issued the cancellation."""
    source, target = pair
    in_search = threading.Event()
    release = threading.Event()

    def gate(_: SearchProgress) -> None:
        in_search.set()
        release.wait(30.0)

    config = identity_configuration().with_overrides(progress_callback=gate)
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target, config=config, use_cache=False)
        assert in_search.wait(30.0), "search never reached the first expansion"
        assert job.state is JobState.RUNNING
        assert manager.cancel(job.id) is True
        release.set()
        assert job.wait(30.0)
        assert job.state is JobState.CANCELLED
        assert job.result is not None and job.result.cancelled is True
        # A cancelled (partial) run must never poison the idempotency cache.
        assert len(manager.cache) == 0


def test_cancel_queued_job_never_runs(pair):
    source, target = pair
    in_search = threading.Event()
    release = threading.Event()

    def gate(_: SearchProgress) -> None:
        in_search.set()
        release.wait(30.0)

    config = identity_configuration().with_overrides(progress_callback=gate)
    with JobManager(workers=1) as manager:
        blocker = manager.submit(source, target, config=config, use_cache=False)
        assert in_search.wait(30.0)
        # The single worker is busy; this one stays queued.
        queued = manager.submit(source, target, name="queued", use_cache=False)
        assert queued.state is JobState.QUEUED
        assert manager.cancel(queued.id) is True
        release.set()
        assert queued.wait(30.0)
        assert queued.state is JobState.CANCELLED
        assert queued.started_at is None
        assert blocker.wait(30.0)
        assert blocker.state is JobState.DONE


def test_cancel_finished_job_returns_false(pair):
    source, target = pair
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target)
        assert job.wait(30.0)
        assert manager.cancel(job.id) is False
        assert job.state is JobState.DONE


def test_throttle_slows_search(pair):
    source, target = pair
    with JobManager(workers=1) as manager:
        job = manager.submit(source, target, throttle_seconds=0.01, use_cache=False)
        assert job.wait(30.0)
        assert job.state is JobState.DONE
        assert job.result.runtime_seconds >= 0.01 * job.result.expansions


# --------------------------------------------------------------------- #
# concurrency
# --------------------------------------------------------------------- #
def test_four_concurrent_jobs_complete_correctly():
    divisors = (10, 100, 1000, 2)
    pairs = []
    for d in divisors:
        source = read_csv_text(
            "id,val\n" + "".join(f"{i},{i * d * 7}\n" for i in range(1, 7))
        )
        target = read_csv_text(
            "id,val\n" + "".join(f"{i},{i * 7}\n" for i in range(1, 7))
        )
        pairs.append((source, target))
    with JobManager(workers=4) as manager:
        jobs = [
            manager.submit(source, target, name=f"div{d}")
            for d, (source, target) in zip(divisors, pairs)
        ]
        assert manager.wait_all(60.0)
        for d, job in zip(divisors, jobs):
            assert job.state is JobState.DONE, job.error
            function = job.result.explanation.functions["val"]
            assert function.meta_name == "division"
            assert float(function.parameters[0]) == pytest.approx(d)


# --------------------------------------------------------------------- #
# request-driven submissions (the repro.api path)
# --------------------------------------------------------------------- #
class TestSubmitRequest:
    @pytest.fixture
    def request_files(self, tmp_path, pair):
        from repro.dataio import write_csv

        source, target = pair
        write_csv(source, tmp_path / "s.csv")
        write_csv(target, tmp_path / "t.csv")
        return tmp_path

    def test_path_request_completes_with_outcome(self, request_files):
        from repro.api import ExplainRequest

        request = ExplainRequest(source_path="s.csv", target_path="t.csv",
                                 name="by-path")
        with JobManager(workers=1) as manager:
            job = manager.submit_request(request, data_root=request_files)
            assert job.wait(60.0)
            assert job.state is JobState.DONE, job.error
            assert job.request is request
            outcome = job.outcome
            assert outcome is not None
            assert outcome.idempotency_key == job.key
            assert outcome.request is request
            assert outcome.explanation == job.result.explanation
            # The published result must not pin the job's observer closures.
            assert job.result.config.should_stop is None
            assert job.result.config.progress_callback is None

    def test_key_is_derived_from_the_canonical_request_hash(self, request_files, pair):
        from repro.api import ExplainRequest
        from repro.service import request_idempotency_key

        source, target = pair
        request = ExplainRequest(source_path="s.csv", target_path="t.csv")
        with JobManager(workers=1) as manager:
            job = manager.submit_request(request, data_root=request_files)
            assert job.key == request_idempotency_key(request, source, target)
            assert request.canonical_key() != job.key  # table contents folded in

    def test_repeat_request_is_a_cache_hit(self, request_files):
        from repro.api import ExplainRequest

        def make_request(**kwargs):
            return ExplainRequest(source_path="s.csv", target_path="t.csv", **kwargs)

        with JobManager(workers=1) as manager:
            first = manager.submit_request(make_request(), data_root=request_files)
            assert first.wait(60.0)
            # Same canonical content, different execution hints: still a hit.
            second = manager.submit_request(
                make_request(name="renamed", use_cache=True),
                data_root=request_files,
            )
            assert second.state is JobState.DONE
            assert second.cache_hit is True
            assert second.key == first.key
            assert second.outcome is not None
            assert second.outcome.explanation == first.outcome.explanation
            # A different engine is different canonical content: a miss.
            third = manager.submit_request(
                make_request(engine="rowwise"), data_root=request_files
            )
            assert third.key != first.key
            assert third.wait(60.0) and third.cache_hit is False

    def test_request_functions_subset_reaches_the_search(self, request_files):
        from repro.api import ExplainRequest

        request = ExplainRequest(source_path="s.csv", target_path="t.csv",
                                 functions=("identity", "division"))
        with JobManager(workers=1) as manager:
            job = manager.submit_request(request, data_root=request_files)
            assert job.wait(60.0)
            assert job.state is JobState.DONE, job.error
            assert job.outcome.provenance.registry == ("identity", "division")
            assert job.instance.registry.names == ["identity", "division"]

    def test_invalid_requests_are_rejected_before_queueing(self, request_files):
        from repro.api import ExplainRequest, RequestValidationError

        with JobManager(workers=1) as manager:
            with pytest.raises(RequestValidationError):
                manager.submit_request(
                    ExplainRequest(source_path="nope.csv", target_path="t.csv"),
                    data_root=request_files,
                )
            with pytest.raises(RequestValidationError):
                manager.submit_request(
                    ExplainRequest(source_path="s.csv", target_path="t.csv",
                                   functions=("warp",)),
                    data_root=request_files,
                )
            assert manager.jobs() == []

    def test_key_ignores_snapshot_transport(self, request_files, pair):
        from repro.api import ExplainRequest
        from repro.dataio import to_csv_text

        source, target = pair
        by_path = ExplainRequest(source_path="s.csv", target_path="t.csv")
        by_dotted_path = ExplainRequest(source_path="./s.csv", target_path="./t.csv")
        inline = ExplainRequest(source_csv=to_csv_text(source),
                                target_csv=to_csv_text(target))
        with JobManager(workers=1) as manager:
            first = manager.submit_request(by_path, data_root=request_files)
            assert first.wait(60.0)
            # Same parsed content through a different transport: a cache hit.
            second = manager.submit_request(by_dotted_path, data_root=request_files)
            third = manager.submit_request(inline)
            assert second.cache_hit is True and second.key == first.key
            assert third.cache_hit is True and third.key == first.key

    def test_outcome_reports_real_load_time(self, request_files):
        from repro.api import ExplainRequest

        request = ExplainRequest(source_path="s.csv", target_path="t.csv")
        with JobManager(workers=1) as manager:
            job = manager.submit_request(request, data_root=request_files)
            assert job.wait(60.0)
            timings = job.outcome.timings
            assert timings.load_seconds > 0.0
            assert timings.total_seconds == pytest.approx(
                timings.load_seconds + timings.search_seconds
            )
            # The cache-hit job reports its own (fresh) load time too.
            repeat = manager.submit_request(request, data_root=request_files)
            assert repeat.cache_hit is True
            assert repeat.outcome.timings.load_seconds > 0.0
