"""Tests of the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dataio import read_csv, write_csv
from repro.datagen.running_example import source_table, target_table
from repro.export import explanation_from_json


@pytest.fixture
def snapshot_files(tmp_path):
    source_path = tmp_path / "source.csv"
    target_path = tmp_path / "target.csv"
    write_csv(source_table(), source_path)
    write_csv(target_table(), target_path)
    return source_path, target_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self, snapshot_files):
        source_path, target_path = snapshot_files
        args = build_parser().parse_args(["explain", str(source_path), str(target_path)])
        assert args.config == "hid"
        assert args.json is None

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "iris"])
        assert args.eta == 0.3
        assert args.tau == 0.3


class TestExplainCommand:
    def test_prints_report(self, snapshot_files, capsys):
        source_path, target_path = snapshot_files
        exit_code = main(["explain", str(source_path), str(target_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "attribute transformations" in output
        assert "Val" in output

    def test_writes_json_sql_and_report(self, snapshot_files, tmp_path, capsys):
        source_path, target_path = snapshot_files
        json_path = tmp_path / "explanation.json"
        sql_path = tmp_path / "migration.sql"
        report_path = tmp_path / "report.txt"
        exit_code = main([
            "explain", str(source_path), str(target_path),
            "--quiet",
            "--json", str(json_path),
            "--sql", str(sql_path),
            "--table-name", "erp_items",
            "--report", str(report_path),
        ])
        assert exit_code == 0
        assert capsys.readouterr().out == ""

        explanation = explanation_from_json(json_path.read_text())
        assert explanation.core_size == 13

        sql = sql_path.read_text()
        assert '"erp_items"' in sql
        assert "UPDATE" in sql and "INSERT INTO" in sql

        assert "record-level changes" in report_path.read_text()

    def test_profile_flag_prints_phase_table(self, snapshot_files, capsys):
        source_path, target_path = snapshot_files
        exit_code = main([
            "explain", str(source_path), str(target_path), "--quiet", "--profile",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "phase" in output and "share" in output
        for phase in ("load", "search", "total"):
            assert phase in output
        # --quiet suppresses the report but not the explicitly requested
        # profile; the table is the only output.
        assert "snapshot difference report" not in output

    def test_trace_flag_writes_chrome_trace_json(self, snapshot_files, tmp_path, capsys):
        source_path, target_path = snapshot_files
        trace_path = tmp_path / "trace.json"
        exit_code = main([
            "explain", str(source_path), str(target_path), "--quiet",
            "--trace", str(trace_path),
        ])
        assert exit_code == 0
        # --quiet suppresses the confirmation line but not the file itself.
        assert capsys.readouterr().out == ""
        document = json.loads(trace_path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert events, "trace file holds no events"
        names = {event["name"] for event in events}
        assert {"explain", "search"} <= names
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_profile_renders_the_span_tree(self, snapshot_files, capsys):
        source_path, target_path = snapshot_files
        exit_code = main([
            "explain", str(source_path), str(target_path), "--quiet", "--profile",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        # The span-tree profile shows real engine phases, not just the
        # legacy three-row load/search/total table.
        assert "induction" in output

    def test_overlap_configuration_flag(self, snapshot_files, capsys):
        source_path, target_path = snapshot_files
        exit_code = main([
            "explain", str(source_path), str(target_path), "--config", "hs",
        ])
        assert exit_code == 0
        assert "snapshot difference report" in capsys.readouterr().out

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["explain", str(tmp_path / "a.csv"), str(tmp_path / "b.csv")])


class TestGenerateCommand:
    def test_writes_snapshot_pair(self, tmp_path, capsys):
        exit_code = main([
            "generate", "iris", "--records", "90", "--eta", "0.2", "--tau", "0.2",
            "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        source = read_csv(tmp_path / "iris_source.csv")
        target = read_csv(tmp_path / "iris_target.csv")
        assert source.schema == target.schema
        assert source.n_rows > 0

    def test_unknown_dataset_fails(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "no-such-dataset", "--output-dir", str(tmp_path)])


class TestDatasetsCommand:
    def test_lists_catalog(self, capsys):
        exit_code = main(["datasets"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "iris" in output and "uniprot" in output
        assert "records" in output


class TestEndToEndViaCli:
    def test_generate_then_explain(self, tmp_path, capsys):
        main([
            "generate", "balance", "--records", "150", "--seed", "5",
            "--output-dir", str(tmp_path),
        ])
        json_path = tmp_path / "explanation.json"
        exit_code = main([
            "explain",
            str(tmp_path / "balance_source.csv"),
            str(tmp_path / "balance_target.csv"),
            "--quiet",
            "--json", str(json_path),
        ])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert "functions" in payload and "alignment" in payload


class TestFunctionsAndEngineFlags:
    @pytest.fixture
    def division_files(self, tmp_path):
        from repro.dataio import Schema, Table

        schema = Schema(("id", "val"))
        source = Table(schema, [(str(i), str(i * 700)) for i in range(1, 9)])
        target = Table(schema, [(str(i), str(i * 7)) for i in range(1, 9)])
        source_path = tmp_path / "pair_source.csv"
        target_path = tmp_path / "pair_target.csv"
        write_csv(source, source_path)
        write_csv(target, target_path)
        return source_path, target_path

    def test_functions_flag_restricts_the_pool(self, division_files, tmp_path, capsys):
        source_path, target_path = division_files
        json_path = tmp_path / "explanation.json"
        exit_code = main([
            "explain", str(source_path), str(target_path),
            "--functions", "identity,division", "--quiet",
            "--json", str(json_path),
        ])
        assert exit_code == 0
        explanation = explanation_from_json(json_path.read_text())
        assert explanation.functions["val"].meta_name == "division"

    def test_unknown_function_name_fails_cleanly(self, division_files, capsys):
        source_path, target_path = division_files
        exit_code = main([
            "explain", str(source_path), str(target_path),
            "--functions", "warp", "--quiet",
        ])
        assert exit_code == 2
        assert "warp" in capsys.readouterr().err

    def test_rowwise_engine_flag(self, division_files, capsys):
        source_path, target_path = division_files
        exit_code = main([
            "explain", str(source_path), str(target_path),
            "--engine", "rowwise",
        ])
        assert exit_code == 0
        assert "snapshot difference report" in capsys.readouterr().out

    def test_batch_accepts_functions_flag(self, division_files, tmp_path, capsys):
        out_dir = tmp_path / "out"
        exit_code = main([
            "batch", str(tmp_path), "--functions", "identity,division",
            "--output-dir", str(out_dir), "--quiet",
        ])
        assert exit_code == 0
        summary = json.loads((out_dir / "batch_summary.json").read_text())
        assert summary[0]["state"] == "done"


class TestFuzzCommand:
    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.time_budget == 30.0
        assert args.seed == 0
        assert args.max_execs is None
        assert args.corpus is None

    def test_short_clean_run_exits_zero(self, capsys):
        code = main(["fuzz", "--time-budget", "20", "--max-execs", "12",
                     "--seed", "0", "--no-coverage", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz: 12 execs" in out
        assert "findings: 0" in out

    def test_corpus_directory_receives_no_findings_when_green(self, tmp_path, capsys):
        code = main(["fuzz", "--time-budget", "20", "--max-execs", "8",
                     "--seed", "1", "--no-coverage", "--quiet",
                     "--corpus", str(tmp_path)])
        assert code == 0
        assert not list((tmp_path / "findings").glob("*.json"))

    def test_serve_parser_accepts_max_body_bytes(self):
        args = build_parser().parse_args(
            ["serve", "--max-body-bytes", "4096"])
        assert args.max_body_bytes == 4096
