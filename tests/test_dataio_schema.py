"""Unit tests for repro.dataio.schema."""

import pytest

from repro.dataio import Schema, SchemaError


class TestSchemaConstruction:
    def test_preserves_order(self):
        schema = Schema(["b", "a", "c"])
        assert schema.attributes == ("b", "a", "c")
        assert list(schema) == ["b", "a", "c"]

    def test_length(self):
        assert len(Schema(["x"])) == 1
        assert len(Schema(["x", "y", "z"])) == 3

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b", "a"])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Schema(["a", ""])

    def test_rejects_non_string(self):
        with pytest.raises(SchemaError):
            Schema(["a", 3])


class TestSchemaLookup:
    def test_contains(self):
        schema = Schema(["a", "b"])
        assert "a" in schema
        assert "z" not in schema

    def test_index_of(self):
        schema = Schema(["a", "b", "c"])
        assert schema.index_of("a") == 0
        assert schema.index_of("c") == 2

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).index_of("b")

    def test_positions_of(self):
        schema = Schema(["a", "b", "c"])
        assert schema.positions_of(["c", "a"]) == (2, 0)

    def test_getitem(self):
        schema = Schema(["a", "b"])
        assert schema[1] == "b"


class TestSchemaDerivation:
    def test_subset_preserves_requested_order(self):
        schema = Schema(["a", "b", "c"])
        assert Schema(["c", "a"]) == schema.subset(["c", "a"])

    def test_subset_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).subset(["a", "x"])

    def test_without(self):
        schema = Schema(["a", "b", "c"])
        assert schema.without(["b"]) == Schema(["a", "c"])

    def test_without_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).without(["z"])

    def test_extended_appends_by_default(self):
        assert Schema(["a"]).extended("b") == Schema(["a", "b"])

    def test_extended_at_position(self):
        assert Schema(["a", "c"]).extended("b", position=1) == Schema(["a", "b", "c"])

    def test_extended_duplicate_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).extended("a")

    def test_renamed(self):
        assert Schema(["a", "b"]).renamed("a", "x") == Schema(["x", "b"])

    def test_renamed_collision_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).renamed("a", "b")


class TestSchemaEquality:
    def test_equal_schemas_hash_equal(self):
        assert hash(Schema(["a", "b"])) == hash(Schema(["a", "b"]))
        assert Schema(["a", "b"]) == Schema(["a", "b"])

    def test_order_matters(self):
        assert Schema(["a", "b"]) != Schema(["b", "a"])

    def test_not_equal_to_other_types(self):
        assert Schema(["a"]) != ("a",)
