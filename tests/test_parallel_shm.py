"""Shared-memory shipping lifecycle tests for the parallel engine.

The coordinator ships problem instances to workers through
``multiprocessing.shared_memory`` segments it exclusively owns.  The contract
under test: every segment the pool creates is unlinked — no stray
``/dev/shm`` entries — whatever the exit path: explicit ``close()``, LRU
eviction, a broken pool, or the owning session's ``close()``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import Affidavit, ProblemInstance, ShardPool, identity_configuration
from repro.core import parallel as parallel_module
from repro.dataio import Schema, Table
from repro.api import Session


def _shm_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))


def _tiny_instance(tag: str) -> ProblemInstance:
    schema = Schema(["id", "value"])
    return ProblemInstance(
        source=Table(schema, [("1", f"a{tag}"), ("2", f"b{tag}")]),
        target=Table(schema, [("1", f"a{tag}")]),
        name=f"tiny-{tag}",
    )


def _noop_payload(instance: ProblemInstance) -> tuple:
    """A real (but empty) bounds-shard dispatch: no functions, no blocks."""
    return (instance.attributes[0], [], *parallel_module._pack_blocks([]))


@pytest.fixture
def remote_everything(monkeypatch):
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_EXAMPLES", 0)
    monkeypatch.setattr(parallel_module, "MIN_REMOTE_RECORDS", 0)


class TestSegmentLifecycle:
    def test_registration_creates_a_segment_close_unlinks_it(self):
        pool = ShardPool(2)
        instance = _tiny_instance("close")
        pool.map_shards(parallel_module._bounds_shard, instance, 64, [])
        names = pool.segment_names()
        assert names, "instance registration should ship via shared memory"
        assert all(_shm_exists(name) for name in names)
        pool.close()
        assert pool.segment_names() == []
        assert not any(_shm_exists(name) for name in names)

    def test_eviction_unlinks_the_oldest_segment(self):
        pool = ShardPool(2)
        # Keep references alive: the registry keys on id(instance).
        instances = [
            _tiny_instance(f"evict{index}")
            for index in range(parallel_module.INSTANCE_CACHE_LIMIT + 1)
        ]
        try:
            pool.map_shards(parallel_module._bounds_shard, instances[0], 64, [])
            first = pool.segment_names()
            assert len(first) == 1
            for instance in instances[1:]:
                pool.map_shards(parallel_module._bounds_shard, instance, 64, [])
            live = pool.segment_names()
            assert len(live) == parallel_module.INSTANCE_CACHE_LIMIT
            assert first[0] not in live
            assert not _shm_exists(first[0])
            assert all(_shm_exists(name) for name in live)
        finally:
            pool.close()

    def test_worker_crash_releases_segments(self):
        pool = ShardPool(2)
        instance = _tiny_instance("crash")
        payload = _noop_payload(instance)
        # One real round trip first: spawns the workers and proves the
        # worker attached the shipped segment successfully.
        results = pool.map_shards(
            parallel_module._bounds_shard, instance, 64, [payload]
        )
        assert results == [[]]
        names = pool.segment_names()
        assert names
        for process in list(pool._executor._processes.values()):
            process.kill()
        time.sleep(0.1)
        # A fresh payload: repeating the first one would be answered from
        # the coordinator's shard-result cache without touching the dead
        # workers.
        fresh_payload = (
            instance.attributes[-1], [], *parallel_module._pack_blocks([])
        )
        assert fresh_payload != payload
        with pytest.raises(parallel_module.PoolUnavailable):
            pool.map_shards(
                parallel_module._bounds_shard, instance, 64, [fresh_payload]
            )
        assert not pool.available()
        assert pool.segment_names() == []
        assert not any(_shm_exists(name) for name in names)
        pool.close()

    def test_session_close_unlinks_segments(self, running_source, running_target,
                                            remote_everything):
        session = Session().with_config(
            identity_configuration(parallel_workers=2, max_expansions=10, seed=3)
        )
        try:
            outcome = session.explain_tables(
                running_source.copy(), running_target.copy()
            )
            assert outcome.result.engine == "parallel"
            pool = session._pool_box._pool
            assert pool is not None
            names = pool.segment_names()
            assert names
            assert all(_shm_exists(name) for name in names)
        finally:
            session.close()
        assert not any(_shm_exists(name) for name in names)


class TestShipFallback:
    def test_inline_fallback_when_shared_memory_fails(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no shared memory on this host")

        monkeypatch.setattr(
            parallel_module.shared_memory, "SharedMemory", refuse
        )
        pool = ShardPool(2)
        instance = _tiny_instance("fallback")
        try:
            results = pool.map_shards(
                parallel_module._bounds_shard, instance, 64,
                [_noop_payload(instance)],
            )
            assert results == [[]]
            assert pool.segment_names() == []
        finally:
            pool.close()


class TestShardResultCache:
    def test_repeated_payloads_are_served_without_dispatch(self):
        pool = ShardPool(2)
        instance = _tiny_instance("memo")
        payload = _noop_payload(instance)
        try:
            first = pool.map_shards(
                parallel_module._bounds_shard, instance, 64, [payload]
            )
            submits = []
            original_submit = pool._executor.submit

            def counting_submit(*args, **kwargs):
                submits.append(args)
                return original_submit(*args, **kwargs)

            pool._executor.submit = counting_submit
            recorded = []
            second = pool.map_shards(
                parallel_module._bounds_shard, instance, 64, [payload],
                lambda position, wall, compute: recorded.append(
                    (position, wall, compute)
                ),
            )
            assert second == first
            assert submits == []
            assert recorded == [(0, 0.0, 0.0)]
        finally:
            pool.close()
