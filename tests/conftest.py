"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import ProblemInstance, identity_configuration, overlap_configuration
from repro.dataio import Schema, Table
from repro.datagen import generate_problem_instance
from repro.datagen.datasets import load_dataset
from repro.datagen.running_example import (
    running_example_instance,
    source_table,
    target_table,
)


@pytest.fixture
def running_example() -> ProblemInstance:
    """The paper's running example I₁ (Figure 1)."""
    return running_example_instance()


@pytest.fixture
def running_source() -> Table:
    return source_table()


@pytest.fixture
def running_target() -> Table:
    return target_table()


@pytest.fixture
def small_schema() -> Schema:
    return Schema(["id", "name", "amount", "unit"])


@pytest.fixture
def small_table(small_schema) -> Table:
    return Table(
        small_schema,
        [
            ("1", "alpha", "100", "EUR"),
            ("2", "beta", "250", "EUR"),
            ("3", "gamma", "75", "USD"),
            ("4", "delta", "100", "USD"),
        ],
    )


@pytest.fixture
def iris_table() -> Table:
    """A small surrogate iris table (deterministic)."""
    return load_dataset("iris", seed=7)


@pytest.fixture
def generated_iris():
    """A generated (η=0.3, τ=0.3) problem instance over the iris surrogate."""
    table = load_dataset("iris", seed=7)
    return generate_problem_instance(table, eta=0.3, tau=0.3, seed=11, name="iris-test")


@pytest.fixture
def hid_config():
    """A fast variant of the paper's Hid configuration for unit tests."""
    return identity_configuration(max_expansions=200)


@pytest.fixture
def hs_config():
    """A fast variant of the paper's Hs configuration for unit tests."""
    return overlap_configuration(max_expansions=200)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
