"""Unit tests for the MDL cost model (Definitions 3.8–3.10 and 4.6)."""

import pytest

from repro.core import (
    ProblemInstance,
    compression_ratio,
    explanation_cost,
    explanation_from_functions,
    function_description_length,
    insertion_description_length,
    partial_state_cost,
    trivial_explanation,
    trivial_explanation_cost,
)
from repro.dataio import Schema, Table
from repro.functions import IDENTITY, ConstantValue, Division, PrefixReplacement, ValueMapping


@pytest.fixture
def instance():
    schema = Schema(["id", "amount"])
    source = Table(schema, [("a", "1000"), ("b", "2000")])
    target = Table(schema, [("a", "1"), ("b", "2"), ("c", "3")])
    return ProblemInstance(source=source, target=target)


class TestDescriptionLengths:
    def test_insertion_length(self):
        assert insertion_description_length(7, 3) == 21
        assert insertion_description_length(7, 0) == 0

    def test_insertion_length_rejects_negative(self):
        with pytest.raises(ValueError):
            insertion_description_length(-1, 2)

    def test_function_length_sums_psi(self):
        functions = [IDENTITY, Division(1000), ConstantValue("x"),
                     PrefixReplacement("a", "b"), ValueMapping({"1": "2", "3": "4"})]
        assert function_description_length(functions) == 0 + 1 + 1 + 2 + 4


class TestExplanationCost:
    def test_alpha_default_balances_terms(self, instance):
        explanation = explanation_from_functions(
            instance, {"id": IDENTITY, "amount": Division(1000)}
        )
        # 1 inserted record × 2 attributes + ψ(division)=1
        assert explanation_cost(instance, explanation) == 2 + 1

    def test_alpha_extremes(self, instance):
        explanation = explanation_from_functions(
            instance, {"id": IDENTITY, "amount": Division(1000)}
        )
        # alpha = 1: only insertions count (doubled weight).
        assert explanation_cost(instance, explanation, alpha=1.0) == 2 * 2
        # alpha = 0: only functions count (doubled weight).
        assert explanation_cost(instance, explanation, alpha=0.0) == 2 * 1

    def test_invalid_alpha_rejected(self, instance):
        explanation = trivial_explanation(instance)
        with pytest.raises(ValueError):
            explanation_cost(instance, explanation, alpha=1.5)

    def test_trivial_cost(self, instance):
        assert trivial_explanation_cost(instance) == instance.n_attributes * instance.n_target_records
        trivial = trivial_explanation(instance)
        assert explanation_cost(instance, trivial) == trivial_explanation_cost(instance)

    def test_compression_ratio(self, instance):
        explanation = explanation_from_functions(
            instance, {"id": IDENTITY, "amount": Division(1000)}
        )
        assert compression_ratio(instance, explanation) == pytest.approx(3 / 6)
        assert compression_ratio(instance, trivial_explanation(instance)) == pytest.approx(1.0)


class TestPartialStateCost:
    def test_uses_the_tighter_lower_bound(self):
        cost = partial_state_cost(
            n_attributes=3,
            function_lengths=2,
            unaligned_target_bound=1,
            unaligned_source_bound=5,
            delta=1,
            alpha=0.5,
        )
        # max(1, 5 - 1) = 4 unaligned targets → 4 × 3 attributes + 2
        assert cost == 4 * 3 + 2

    def test_never_negative_insertion_bound(self):
        cost = partial_state_cost(
            n_attributes=3,
            function_lengths=0,
            unaligned_target_bound=0,
            unaligned_source_bound=0,
            delta=10,
            alpha=0.5,
        )
        assert cost == 0

    def test_alpha_weighting(self):
        cost = partial_state_cost(
            n_attributes=2,
            function_lengths=4,
            unaligned_target_bound=3,
            unaligned_source_bound=0,
            delta=0,
            alpha=0.25,
        )
        assert cost == pytest.approx(2 * 0.25 * 6 + 2 * 0.75 * 4)
