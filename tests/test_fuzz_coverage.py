"""Tests of the line-coverage collector (:mod:`repro.fuzz.coverage`).

The collector guides the fuzzer: inputs that light up new lines under
``src/repro/`` are kept in the corpus.  On CPython < 3.12 it rides on
``sys.settrace``; on 3.12+ it prefers the lower-overhead ``sys.monitoring``
API.  Either way it must only report lines of the engine under test — never
of the fuzzer itself or of third-party code.
"""

from __future__ import annotations

import sys

from repro.dataio import Schema, Table
from repro.fuzz import LineCollector, NullCollector


def _touch_repro_code() -> None:
    table = Table(Schema(("A", "B")), [("1", "x"), ("2", "y")])
    table.column_view("A")
    table.project(("B",))


class TestLineCollector:
    def test_collects_lines_of_the_engine_under_test(self):
        with LineCollector() as collector:
            _touch_repro_code()
        assert collector.lines
        files = {filename for filename, _line in collector.lines}
        assert all("src/repro/" in name.replace("\\", "/") for name in files)

    def test_excludes_the_fuzzer_itself(self):
        with LineCollector() as collector:
            _touch_repro_code()
        files = {filename for filename, _line in collector.lines}
        assert not any("repro/fuzz/" in name.replace("\\", "/") for name in files)

    def test_backend_matches_interpreter(self):
        collector = LineCollector()
        if hasattr(sys, "monitoring"):
            assert collector.backend == "monitoring"
        else:
            assert collector.backend == "settrace"

    def test_reentrant_runs_accumulate_independently(self):
        with LineCollector() as first:
            _touch_repro_code()
        with LineCollector() as second:
            pass  # no engine code executed
        assert first.lines
        assert not second.lines

    def test_new_lines_appear_for_new_behaviour(self):
        with LineCollector() as baseline:
            _touch_repro_code()
        with LineCollector() as richer:
            _touch_repro_code()
            table = Table(Schema(("A",)), [("1",), ("1",), ("2",)])
            table.column_view("A").dictionary()
        assert richer.lines - baseline.lines


class TestNullCollector:
    def test_is_a_no_op_context_manager(self):
        with NullCollector() as collector:
            _touch_repro_code()
        assert collector.lines == set()
        assert collector.backend == "off"
