"""Tests of the delta-debugging minimizer (:mod:`repro.fuzz.minimizer`).

The minimizer shrinks a failing snapshot pair along three axes (source rows,
target rows, columns) with complement-based ddmin, re-verifying the failure
after every candidate.  These tests drive it with synthetic predicates whose
minimal repro is known exactly.
"""

from __future__ import annotations

import pytest

from repro.dataio import read_csv_text
from repro.fuzz import (
    MinimizationResult,
    SnapshotPair,
    minimize_pair,
)


def _pair(n_source: int = 12, n_target: int = 10) -> SnapshotPair:
    source = "Name,Val,Mod\n" + "".join(
        f"s{i},{'X' if i == 7 else i},air\n" for i in range(n_source)
    )
    target = "Name,Val,Mod\n" + "".join(
        f"t{i},{i},sea\n" for i in range(n_target)
    )
    return SnapshotPair(
        source=read_csv_text(source), target=read_csv_text(target)
    )


def _column(table, attribute):
    # Candidate pairs may have dropped the column; predicates must treat
    # that as "does not reproduce", exactly like real oracle wrappers do.
    if attribute not in list(table.schema):
        return ()
    return table.column_view(attribute)


def _source_has_poison(pair: SnapshotPair) -> bool:
    return "X" in _column(pair.source, "Val")


class TestMinimizePair:
    def test_shrinks_to_the_single_poison_row(self):
        pair = _pair()
        result = minimize_pair(pair, _source_has_poison)
        assert _source_has_poison(result.pair)
        assert result.pair.source.n_rows == 1
        assert result.pair.target.n_rows == 0
        assert result.rows_before == 22
        assert result.rows_after == 1
        assert result.tests_run > 0

    def test_shrinks_columns_to_the_relevant_one(self):
        pair = _pair()
        result = minimize_pair(pair, _source_has_poison)
        assert list(result.pair.source.schema) == ["Val"]
        assert result.columns_before == 3
        assert result.columns_after == 1

    def test_result_pair_always_satisfies_predicate(self):
        # Predicate needing one source row AND one target row together.
        def needs_both(pair: SnapshotPair) -> bool:
            return (
                "X" in _column(pair.source, "Val")
                and "t3" in _column(pair.target, "Name")
            )

        result = minimize_pair(_pair(), needs_both)
        assert needs_both(result.pair)
        assert result.pair.source.n_rows == 1
        assert result.pair.target.n_rows == 1

    def test_budget_exhaustion_returns_best_verified_pair(self):
        pair = _pair(n_source=30, n_target=30)
        result = minimize_pair(pair, _source_has_poison, max_tests=5)
        # Too few tests to finish, but whatever is returned must still fail.
        assert _source_has_poison(result.pair)
        assert result.pair.n_rows <= pair.n_rows

    def test_non_reproducing_pair_is_returned_unchanged(self):
        pair = _pair()
        result = minimize_pair(pair, lambda candidate: False)
        assert result.pair.n_rows == pair.n_rows
        assert result.rows_after == result.rows_before

    def test_describe_mentions_both_axes(self):
        result = minimize_pair(_pair(), _source_has_poison)
        assert isinstance(result, MinimizationResult)
        text = result.describe()
        assert "rows" in text and "columns" in text
