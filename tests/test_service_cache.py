"""Idempotency cache: keying, hit/miss accounting, TTL expiry, LRU eviction."""

from __future__ import annotations

import pytest

from repro.core import identity_configuration, overlap_configuration
from repro.dataio import Schema, Table, read_csv_text
from repro.service import ResultCache, idempotency_key


@pytest.fixture
def pair():
    source = read_csv_text("id,val\n1,100\n2,200\n3,300\n")
    target = read_csv_text("id,val\n1,1\n2,2\n3,3\n")
    return source, target


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# idempotency key
# --------------------------------------------------------------------- #
def test_key_is_deterministic(pair):
    source, target = pair
    config = identity_configuration()
    assert idempotency_key(source, target, config) == idempotency_key(
        source, target, config
    )


def test_key_depends_on_table_content(pair):
    source, target = pair
    config = identity_configuration()
    other_target = read_csv_text("id,val\n1,1\n2,2\n3,4\n")
    assert idempotency_key(source, target, config) != idempotency_key(
        source, other_target, config
    )


def test_key_depends_on_direction(pair):
    source, target = pair
    config = identity_configuration()
    assert idempotency_key(source, target, config) != idempotency_key(
        target, source, config
    )


def test_key_depends_on_comparable_config_fields(pair):
    source, target = pair
    assert idempotency_key(source, target, identity_configuration()) != \
        idempotency_key(source, target, overlap_configuration())
    assert idempotency_key(source, target, identity_configuration(seed=0)) != \
        idempotency_key(source, target, identity_configuration(seed=1))


def test_key_ignores_observer_callbacks(pair):
    source, target = pair
    plain = identity_configuration()
    observed = identity_configuration().with_overrides(
        progress_callback=lambda p: None, should_stop=lambda: False
    )
    assert idempotency_key(source, target, plain) == idempotency_key(
        source, target, observed
    )


def test_key_is_unambiguous_for_separator_characters():
    # Without length-prefixing, ("a\x1fb", "c") and ("a", "b\x1fc") would
    # digest to the same bytes and collide.
    config = identity_configuration()
    left = Table(Schema(["x", "y"]), [("a\x1fb", "c")])
    right = Table(Schema(["x", "y"]), [("a", "b\x1fc")])
    target = Table(Schema(["x", "y"]), [("1", "2")])
    assert idempotency_key(left, target, config) != idempotency_key(
        right, target, config
    )


def test_key_depends_on_registry_names(pair):
    source, target = pair
    config = identity_configuration()
    assert idempotency_key(source, target, config) != idempotency_key(
        source, target, config, registry_names=("identity",)
    )


# --------------------------------------------------------------------- #
# cache behaviour
# --------------------------------------------------------------------- #
def test_get_miss_then_hit():
    cache = ResultCache(max_entries=4)
    assert cache.get("k") is None
    cache.put("k", "value")
    assert cache.get("k") == "value"
    stats = cache.stats()
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.size == 1
    assert stats.hit_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    cache = ResultCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh 'a'; 'b' is now LRU
    cache.put("c", 3)
    assert cache.get("b") is None       # evicted
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats().evictions == 1


def test_put_existing_key_updates_without_eviction():
    cache = ResultCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert cache.get("a") == 10
    assert cache.get("b") == 2
    assert cache.stats().evictions == 0


def test_ttl_expiry():
    clock = FakeClock()
    cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    cache.put("k", "value")
    clock.advance(9.0)
    assert cache.get("k") == "value"
    clock.advance(2.0)
    assert cache.get("k") is None
    stats = cache.stats()
    assert stats.expirations == 1
    assert stats.size == 0


def test_clear_and_len():
    cache = ResultCache(max_entries=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None


def test_constructor_validation():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)
    with pytest.raises(ValueError):
        ResultCache(ttl_seconds=0.0)
    with pytest.raises(ValueError):
        ResultCache(ttl_seconds=-1.0)
