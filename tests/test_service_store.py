"""The shared result store: backends, spec parsing, and replica dedup.

The L2 contract: anything a store returns has crossed the JSON
serialization boundary, a second replica pointed at the same sqlite file
answers identical requests without re-searching, and a restarted replica
keeps serving results computed before the restart.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.dataio import read_csv_text
from repro.service import (
    JobManager,
    JobState,
    MemoryResultStore,
    ResultView,
    SqliteResultStore,
    create_server,
    open_store,
)


@pytest.fixture
def pair():
    source = read_csv_text(
        "id,name,val\n1,alpha,100\n2,beta,200\n3,gamma,300\n4,delta,400\n"
    )
    target = read_csv_text(
        "id,name,val\n1,ALPHA,1\n2,BETA,2\n3,GAMMA,3\n4,DELTA,4\n"
    )
    return source, target


# --------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------- #
class TestSqliteBackend:
    def test_round_trip_and_stats(self, tmp_path):
        with SqliteResultStore(tmp_path / "results.db") as store:
            assert store.get("k1") is None
            store.put("k1", {"cost": 3.5, "nested": {"a": [1, 2]}})
            assert store.get("k1") == {"cost": 3.5, "nested": {"a": [1, 2]}}
            store.put("k1", {"cost": 4.0})  # overwrite, not a second row
            assert store.get("k1")["cost"] == 4.0
            stats = store.stats()
            assert stats.backend == "sqlite"
            assert stats.hits == 2
            assert stats.misses == 1
            assert stats.puts == 2
            assert stats.size == 1

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "results.db"
        with SqliteResultStore(path) as store:
            store.put("k", {"v": 1})
        with SqliteResultStore(path) as reopened:
            assert reopened.get("k") == {"v": 1}
            assert reopened.stats().size == 1

    def test_concurrent_writers_share_one_file(self, tmp_path):
        path = tmp_path / "results.db"
        first = SqliteResultStore(path)
        second = SqliteResultStore(path)
        try:
            first.put("from-first", {"n": 1})
            second.put("from-second", {"n": 2})
            assert first.get("from-second") == {"n": 2}
            assert second.get("from-first") == {"n": 1}
        finally:
            first.close()
            second.close()

    def test_ttl_expires_entries(self, tmp_path):
        tick = [0.0]
        store = SqliteResultStore(tmp_path / "results.db", ttl_seconds=10.0,
                                  clock=lambda: tick[0])
        try:
            store.put("k", {"v": 1})
            tick[0] = 9.0
            assert store.get("k") == {"v": 1}
            tick[0] = 11.0
            assert store.get("k") is None
            assert store.stats().size == 0  # expiry deletes the row
        finally:
            store.close()

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteResultStore(tmp_path / "x.db", ttl_seconds=0)


class TestMemoryBackend:
    def test_round_trip_crosses_serialization(self):
        store = MemoryResultStore()
        payload = {"v": (1, 2)}  # tuples do not survive JSON
        store.put("k", payload)
        assert store.get("k") == {"v": [1, 2]}
        stats = store.stats()
        assert stats.backend == "memory"
        assert (stats.hits, stats.puts) == (1, 1)


class TestOpenStore:
    def test_disabled_specs(self):
        assert open_store(None) is None
        assert open_store("") is None
        assert open_store("  none ") is None

    def test_memory_spec(self):
        assert isinstance(open_store("memory"), MemoryResultStore)

    def test_sqlite_specs(self, tmp_path):
        for spec in (f"sqlite:{tmp_path}/a.db",
                     f"sqlite://{tmp_path}/b.db".replace("//", "///", 1),
                     f"{tmp_path}/c.db"):
            store = open_store(spec)
            assert isinstance(store, SqliteResultStore)
            store.close()

    def test_sqlite_spec_without_path_is_rejected(self):
        with pytest.raises(ValueError):
            open_store("sqlite:")


# --------------------------------------------------------------------- #
# manager-level dedup
# --------------------------------------------------------------------- #
def test_second_replica_answers_from_store(tmp_path, pair):
    source, target = pair
    store = SqliteResultStore(tmp_path / "shared.db")
    with JobManager(workers=2, store=store) as first:
        computed = first.submit(source.copy(), target.copy(), name="shared")
        assert computed.wait(30.0)
        assert computed.state is JobState.DONE
        assert computed.store_hit is False
    assert store.stats().puts == 1

    with JobManager(workers=2, store=store) as second:
        job = second.submit(source.copy(), target.copy(), name="shared")
        # A store hit resolves synchronously at submission time.
        assert job.state is JobState.DONE
        assert job.store_hit is True
        assert job.cache_hit is True
        assert job.result is None  # the outcome crossed the wire boundary
        assert job.outcome is not None
        assert job.outcome.cost == computed.outcome.cost
        view = ResultView.from_job(job)
        assert view.cost == computed.outcome.cost
        assert view.explanation == json.loads(
            json.dumps(view.explanation))  # JSON-stable
    store.close()


def test_restarted_replica_recovers_results(tmp_path, pair):
    source, target = pair
    path = tmp_path / "shared.db"
    with SqliteResultStore(path) as store:
        with JobManager(workers=2, store=store) as manager:
            job = manager.submit(source.copy(), target.copy(), name="restart")
            assert job.wait(30.0)
    # Process "restart": a brand-new store handle and manager.
    with SqliteResultStore(path) as store:
        with JobManager(workers=2, store=store) as manager:
            job = manager.submit(source.copy(), target.copy(), name="restart")
            assert job.state is JobState.DONE
            assert job.store_hit is True


def test_corrupt_store_entry_degrades_to_recompute(tmp_path, pair):
    source, target = pair
    store = SqliteResultStore(tmp_path / "shared.db")
    with JobManager(workers=2, store=store) as manager:
        job = manager.submit(source.copy(), target.copy(), name="corrupt")
        assert job.wait(30.0)
        key = job.key
    store.put(key, {"schema_version": "affidavit.outcome/v1", "cost": "junk"})
    with JobManager(workers=2, store=store) as manager:
        job = manager.submit(source.copy(), target.copy(), name="corrupt")
        assert job.wait(30.0)
        assert job.state is JobState.DONE
        assert job.store_hit is False  # the bad entry was treated as a miss
    store.close()


# --------------------------------------------------------------------- #
# two live replicas over HTTP
# --------------------------------------------------------------------- #
def _http(base_url, method, path, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(base_url + path, method=method, data=data,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_two_http_replicas_deduplicate_via_store(tmp_path, pair):
    store = SqliteResultStore(tmp_path / "shared.db")
    replicas = []
    threads = []
    try:
        for _ in range(2):
            server = create_server(workers=2, store=store)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            replicas.append(server)
            threads.append(thread)
        urls = [f"http://{s.server_address[0]}:{s.server_address[1]}"
                for s in replicas]
        body = {
            "source_csv": "id,val\n1,700\n2,1400\n3,2100\n",
            "target_csv": "id,val\n1,7\n2,14\n3,21\n",
            "name": "replicated",
        }
        status, view = _http(urls[0], "POST", "/v1/explain", body)
        assert status in (200, 202)
        job_id = view["id"]
        import time as _time
        deadline = _time.monotonic() + 30.0
        while _time.monotonic() < deadline:
            status, view = _http(urls[0], "GET", f"/v1/jobs/{job_id}")
            if view["state"] == "done":
                break
            _time.sleep(0.02)
        assert view["state"] == "done"

        # Replica B never saw the request: its L1 is cold, the shared store
        # answers instead of a second search.
        status, view = _http(urls[1], "POST", "/v1/explain", body)
        assert status == 200
        assert view["store_hit"] is True
        assert view["cache_hit"] is True

        status, result = _http(urls[1], "GET",
                               f"/v1/jobs/{view['id']}/result")
        assert status == 200
        assert result["cost"] <= result["trivial_cost"]

        status, health = _http(urls[1], "GET", "/healthz")
        assert health["store"]["backend"] == "sqlite"
        assert health["store"]["hits"] >= 1
    finally:
        for server in replicas:
            server.shutdown_service()
        for thread in threads:
            thread.join(timeout=10.0)
        store.close()
