"""The job event stream: buffer semantics, frame wire shape, HTTP streaming.

Pins the ``affidavit.event/v1`` contract end to end — sequences start at 1
and only grow, eviction is reported as one ``truncated`` frame, terminal
frames close the stream and match what polling the job reports, resume works
via both ``Last-Event-ID`` and ``?after=``, and SSE framing is available on
request.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    EVENT_SCHEMA_VERSION,
    RequestValidationError,
    UnsupportedSchemaVersion,
    make_frame,
    parse_frame,
)
from repro.service import create_server
from repro.service.jobs import JobEventBuffer


# --------------------------------------------------------------------- #
# buffer unit tests
# --------------------------------------------------------------------- #
class TestJobEventBuffer:
    def test_sequences_start_at_one_and_grow(self):
        buffer = JobEventBuffer("job-x")
        first = buffer.append("progressed", expansions=1)
        second = buffer.append("progressed", expansions=2)
        assert first["sequence"] == 1
        assert second["sequence"] == 2
        frames, lost = buffer.collect(0)
        assert lost == 0
        assert [f["sequence"] for f in frames] == [1, 2]

    def test_collect_after_cursor_skips_delivered(self):
        buffer = JobEventBuffer("job-x")
        for n in range(1, 5):
            buffer.append("progressed", expansions=n)
        frames, lost = buffer.collect(2)
        assert lost == 0
        assert [f["sequence"] for f in frames] == [3, 4]

    def test_eviction_reports_lost_frames(self):
        buffer = JobEventBuffer("job-x", max_frames=4)
        for n in range(1, 11):
            buffer.append("progressed", expansions=n)
        frames, lost = buffer.collect(0)
        assert len(frames) == 4
        assert [f["sequence"] for f in frames] == [7, 8, 9, 10]
        assert lost == 6
        # A cursor inside the retained window loses nothing.
        frames, lost = buffer.collect(8)
        assert lost == 0
        assert [f["sequence"] for f in frames] == [9, 10]

    def test_terminal_kind_closes_buffer(self):
        buffer = JobEventBuffer("job-x")
        buffer.append("completed", state="done", outcome=None)
        assert buffer.closed
        assert buffer.append("progressed", expansions=1) is None
        frames, _ = buffer.collect(0)
        assert [f["kind"] for f in frames] == ["completed"]

    def test_wait_returns_on_new_frame(self):
        buffer = JobEventBuffer("job-x")
        result = {}

        def waiter():
            result["woke"] = buffer.wait(0, timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        buffer.append("progressed", expansions=1)
        thread.join(timeout=5.0)
        assert result["woke"] is True

    def test_wait_times_out_without_frames(self):
        buffer = JobEventBuffer("job-x")
        assert buffer.wait(0, timeout=0.05) is False

    def test_requires_room_for_two_frames(self):
        with pytest.raises(ValueError):
            JobEventBuffer("job-x", max_frames=1)


# --------------------------------------------------------------------- #
# frame wire shape
# --------------------------------------------------------------------- #
class TestParseFrame:
    def test_started_round_trip(self):
        frame = make_frame("started", job_id="j1", sequence=1, name="n",
                           engine="columnar", n_source_records=4,
                           n_target_records=4, n_attributes=3)
        parsed = parse_frame(json.loads(json.dumps(frame)))
        assert parsed.kind == "started"
        assert parsed.sequence == 1
        assert parsed.payload["engine"] == "columnar"
        assert not parsed.terminal

    def test_completed_round_trip_is_terminal(self):
        frame = make_frame("completed", job_id="j1", sequence=9,
                           state="done", cache_hit=False, store_hit=False,
                           outcome=None)
        parsed = parse_frame(frame)
        assert parsed.terminal
        assert parsed.payload["state"] == "done"
        assert parsed.outcome is None

    def test_failed_round_trip(self):
        frame = make_frame("failed", job_id="j1", sequence=2,
                           state="failed", error="boom")
        parsed = parse_frame(frame)
        assert parsed.terminal
        assert parsed.payload["error"] == "boom"

    def test_heartbeat_and_truncated_are_unsequenced(self):
        assert parse_frame(make_frame("heartbeat", job_id="j1")).sequence is None
        parsed = parse_frame(make_frame("truncated", job_id="j1", dropped=3))
        assert parsed.payload["dropped"] == 3
        with pytest.raises(RequestValidationError):
            parse_frame(make_frame("heartbeat", job_id="j1", sequence=4))

    def test_rejects_version_skew(self):
        frame = make_frame("heartbeat", job_id="j1")
        frame["schema_version"] = "affidavit.event/v99"
        with pytest.raises(UnsupportedSchemaVersion):
            parse_frame(frame)

    @pytest.mark.parametrize("broken", [
        {"schema_version": EVENT_SCHEMA_VERSION, "kind": "nope", "job_id": "j"},
        {"schema_version": EVENT_SCHEMA_VERSION, "kind": "started", "job_id": ""},
        {"schema_version": EVENT_SCHEMA_VERSION, "kind": "started",
         "job_id": "j", "sequence": 0, "name": "n", "engine": "e",
         "n_source_records": 1, "n_target_records": 1, "n_attributes": 1},
        {"schema_version": EVENT_SCHEMA_VERSION, "kind": "completed",
         "job_id": "j", "sequence": 1, "state": "exploded", "outcome": None},
        {"schema_version": EVENT_SCHEMA_VERSION, "kind": "failed",
         "job_id": "j", "sequence": 1, "state": "failed", "error": ""},
        "not even an object",
    ])
    def test_rejects_malformed_frames(self, broken):
        with pytest.raises(RequestValidationError):
            parse_frame(broken)


# --------------------------------------------------------------------- #
# HTTP streaming
# --------------------------------------------------------------------- #
@pytest.fixture
def server():
    instance = create_server(workers=2)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown_service()
    thread.join(timeout=10.0)


@pytest.fixture
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def http(base_url, method, path, body=None, headers=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    req = urllib.request.Request(base_url + path, method=method, data=data,
                                 headers=all_headers)
    try:
        with urllib.request.urlopen(req, timeout=30.0) as response:
            return response.status, response.read().decode("utf-8"), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), dict(error.headers)


def explain_body(divisor, rows=6, **extra):
    source = "id,val\n" + "".join(
        f"{i},{i * 7 * divisor}\n" for i in range(1, rows + 1))
    target = "id,val\n" + "".join(f"{i},{i * 7}\n" for i in range(1, rows + 1))
    body = {"source_csv": source, "target_csv": target, "name": f"div{divisor}"}
    body.update(extra)
    return body


def stream_frames(base_url, path, headers=None):
    """All frames of one (bounded) events request, parsed and validated."""
    status, text, response_headers = http(base_url, "GET", path,
                                          headers=headers)
    assert status == 200, text
    frames = [parse_frame(json.loads(line))
              for line in text.splitlines() if line.strip()]
    return frames, response_headers


def test_stream_full_lifecycle_ndjson(base_url):
    status, text, _ = http(base_url, "POST", "/v1/explain", explain_body(3))
    assert status in (200, 202)
    job_id = json.loads(text)["id"]

    frames, headers = stream_frames(base_url, f"/v1/jobs/{job_id}/events")
    assert headers["Content-Type"] == "application/x-ndjson"
    kinds = [f.kind for f in frames]
    assert kinds[0] == "started"
    assert kinds[-1] == "completed"
    assert "progressed" in kinds
    assert all(f.job_id == job_id for f in frames)
    sequences = [f.sequence for f in frames if f.sequence is not None]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == len(sequences)
    terminal = frames[-1]
    assert terminal.payload["state"] == "done"
    # The terminal frame carries the full serialized outcome.
    assert terminal.outcome is not None
    assert terminal.outcome.cost <= terminal.outcome.trivial_cost
    # And it agrees with what polling reports.
    status, text, _ = http(base_url, "GET", f"/v1/jobs/{job_id}")
    assert json.loads(text)["state"] == "done"


def test_stream_resumes_via_last_event_id_and_after(base_url):
    status, text, _ = http(base_url, "POST", "/v1/explain", explain_body(5))
    job_id = json.loads(text)["id"]
    full, _ = stream_frames(base_url, f"/v1/jobs/{job_id}/events")
    cursor = full[0].sequence
    assert cursor == 1

    resumed, _ = stream_frames(base_url, f"/v1/jobs/{job_id}/events",
                               headers={"Last-Event-ID": str(cursor)})
    assert [f.sequence for f in resumed] == \
        [f.sequence for f in full if f.sequence and f.sequence > cursor]

    via_param, _ = stream_frames(
        base_url, f"/v1/jobs/{job_id}/events?after={cursor}")
    assert [f.sequence for f in via_param] == [f.sequence for f in resumed]

    # Resuming past the terminal frame yields an empty, closed stream.
    last = full[-1].sequence
    drained, _ = stream_frames(base_url,
                               f"/v1/jobs/{job_id}/events?after={last}")
    assert drained == []


def test_stream_sse_format(base_url):
    status, text, _ = http(base_url, "POST", "/v1/explain", explain_body(7))
    job_id = json.loads(text)["id"]
    status, text, headers = http(base_url, "GET",
                                 f"/v1/jobs/{job_id}/events",
                                 headers={"Accept": "text/event-stream"})
    assert status == 200
    assert headers["Content-Type"] == "text/event-stream"
    events = [block for block in text.split("\n\n") if block.strip()]
    frames = []
    for block in events:
        lines = dict(line.split(": ", 1) for line in block.splitlines())
        frame = parse_frame(json.loads(lines["data"]))
        if frame.sequence is not None:
            assert int(lines["id"]) == frame.sequence
        frames.append(frame)
    assert frames[-1].terminal


def test_stream_heartbeats_on_idle_job(base_url):
    body = explain_body(11, throttle_seconds=0.3)
    status, text, _ = http(base_url, "POST", "/v1/explain", body)
    job_id = json.loads(text)["id"]
    frames, _ = stream_frames(
        base_url, f"/v1/jobs/{job_id}/events?wait=1&heartbeat=0.05")
    assert any(f.kind == "heartbeat" for f in frames)
    http(base_url, "DELETE", f"/v1/jobs/{job_id}")


def test_cache_hit_job_streams_single_completed_frame(base_url):
    body = explain_body(13)
    status, text, _ = http(base_url, "POST", "/v1/explain", body)
    job_id = json.loads(text)["id"]
    stream_frames(base_url, f"/v1/jobs/{job_id}/events")  # wait until done

    status, text, _ = http(base_url, "POST", "/v1/explain", body)
    assert status == 200
    repeat = json.loads(text)
    assert repeat["cache_hit"] is True
    frames, _ = stream_frames(base_url, f"/v1/jobs/{repeat['id']}/events")
    assert [f.kind for f in frames] == ["completed"]
    assert frames[0].payload["cache_hit"] is True


def test_invalid_cursor_is_enveloped_400(base_url):
    status, text, _ = http(base_url, "POST", "/v1/explain", explain_body(17))
    job_id = json.loads(text)["id"]
    for path in (f"/v1/jobs/{job_id}/events?after=banana",
                 f"/v1/jobs/{job_id}/events?after=-3",
                 f"/v1/jobs/{job_id}/events?wait=banana"):
        status, text, _ = http(base_url, "GET", path)
        assert status == 400
        payload = json.loads(text)
        assert payload["schema_version"] == "affidavit.error/v1"
        assert payload["code"] in ("invalid_cursor", "invalid_wait")
        assert payload["error"] == payload["message"]
    stream_frames(base_url, f"/v1/jobs/{job_id}/events")  # drain before teardown


def test_unknown_job_events_is_enveloped_404(base_url):
    status, text, _ = http(base_url, "GET", "/v1/jobs/nope/events")
    assert status == 404
    payload = json.loads(text)
    assert payload["schema_version"] == "affidavit.error/v1"
    assert payload["code"] == "unknown_job"
