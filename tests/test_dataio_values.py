"""Unit tests for repro.dataio.values (cell parsing/formatting conventions)."""

from decimal import Decimal

import pytest

from repro.dataio import values


class TestParseNumber:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", Decimal("0")),
            ("42", Decimal("42")),
            ("-7", Decimal("-7")),
            ("+3", Decimal("3")),
            ("3.14", Decimal("3.14")),
            ("-0.5", Decimal("-0.5")),
            ("  12 ", Decimal("12")),
            ("0.065", Decimal("0.065")),
        ],
    )
    def test_accepts_plain_numbers(self, text, expected):
        assert values.parse_number(text) == expected

    @pytest.mark.parametrize(
        "text",
        ["", " ", "abc", "1,000", "1e5", "12.3.4", "$5", "-", "+", "12 34", "0x10"],
    )
    def test_rejects_non_numbers(self, text):
        assert values.parse_number(text) is None

    def test_is_numeric_consistent_with_parse(self):
        assert values.is_numeric("10.5")
        assert not values.is_numeric("ten")


class TestFormatNumber:
    @pytest.mark.parametrize(
        "number,expected",
        [
            (Decimal("80"), "80"),
            (Decimal("80.000"), "80"),
            (Decimal("6.540"), "6.54"),
            (Decimal("0.0650"), "0.065"),
            (Decimal("-2.50"), "-2.5"),
            (Decimal("0"), "0"),
            (Decimal("1E+2"), "100"),
        ],
    )
    def test_formatting(self, number, expected):
        assert values.format_number(number) == expected


class TestArithmeticHelpers:
    def test_add_strings(self):
        assert values.add_strings("10", Decimal(5)) == "15"
        assert values.add_strings("2.5", Decimal("-0.5")) == "2"

    def test_add_strings_non_numeric(self):
        assert values.add_strings("abc", Decimal(1)) is None

    def test_divide_strings_matches_running_example(self):
        # The Val attribute of the running example: x ↦ x / 1000.
        assert values.divide_strings("80000", Decimal(1000)) == "80"
        assert values.divide_strings("6540", Decimal(1000)) == "6.54"
        assert values.divide_strings("65", Decimal(1000)) == "0.065"
        assert values.divide_strings("0", Decimal(1000)) == "0"

    def test_divide_by_zero(self):
        assert values.divide_strings("10", Decimal(0)) is None

    def test_divide_non_numeric(self):
        assert values.divide_strings("x", Decimal(2)) is None

    def test_multiply_strings(self):
        assert values.multiply_strings("12", Decimal(3)) == "36"
        assert values.multiply_strings("1.5", Decimal(2)) == "3"
        assert values.multiply_strings("n/a", Decimal(2)) is None


class TestStringHelpers:
    def test_common_prefix_length(self):
        assert values.common_prefix_length("99991231", "99990701") == 4
        assert values.common_prefix_length("abc", "xyz") == 0
        assert values.common_prefix_length("abc", "abc") == 3

    def test_common_suffix_length(self):
        assert values.common_suffix_length("99991231", "20180701") == 1
        assert values.common_suffix_length("abc", "abc") == 3
        assert values.common_suffix_length("abc", "xyz") == 0

    def test_missing_tokens(self):
        assert values.is_missing("")
        assert values.is_missing("?")
        assert values.is_missing("NULL")
        assert not values.is_missing("0")
        assert not values.is_missing("value")
