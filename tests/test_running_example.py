"""Reproduction of the paper's worked running example (Figure 1, Section 3.1).

These tests pin the library to the numbers the paper works out by hand:

* the reference explanation E₁ aligns 13 records, deletes 4 and inserts 3,
* its cost under α = 0.5 is 77,
* the trivial explanation costs |A|·|T| = 7·16 = 112,
* applying E₁'s functions to S01 produces T07's values,
* and the Affidavit search with the Hid configuration recovers an explanation
  of the same (optimal) cost.
"""

import pytest

from repro.core import (
    Affidavit,
    explanation_cost,
    explanation_from_functions,
    identity_configuration,
    trivial_explanation_cost,
)
from repro.datagen.running_example import (
    REFERENCE_COST,
    REFERENCE_DELETED_LABELS,
    REFERENCE_INSERTED_LABELS,
    TRIVIAL_COST,
    reference_alignment,
    reference_functions,
    running_example_instance,
    source_table,
    target_table,
)


@pytest.fixture(scope="module")
def instance():
    return running_example_instance()


@pytest.fixture(scope="module")
def reference(instance):
    return explanation_from_functions(instance, reference_functions())


class TestTables:
    def test_snapshot_sizes(self, instance):
        assert instance.n_source_records == 17
        assert instance.n_target_records == 16
        assert instance.n_attributes == 7
        assert instance.delta == 1

    def test_schema_order(self, instance):
        assert list(instance.schema) == ["ID1", "ID2", "Date", "Type", "Val", "Unit", "Org"]


class TestReferenceExplanation:
    def test_is_valid(self, instance, reference):
        reference.validate(instance)

    def test_core_and_noise_sizes(self, reference):
        assert reference.core_size == 13
        assert reference.n_deleted == 4
        assert reference.n_inserted == 3

    def test_alignment_matches_figure(self, instance, reference):
        assert reference.alignment == reference_alignment()

    def test_deleted_and_inserted_labels(self, instance, reference):
        source = source_table()
        target = target_table()
        deleted_labels = {source.cell(i, "ID1") for i in reference.deleted_source_ids}
        inserted_labels = {target.cell(i, "ID1") for i in reference.inserted_target_ids}
        assert deleted_labels == set(REFERENCE_DELETED_LABELS)
        assert inserted_labels == set(REFERENCE_INSERTED_LABELS)

    def test_cost_is_77(self, instance, reference):
        assert explanation_cost(instance, reference) == REFERENCE_COST

    def test_trivial_cost_is_112(self, instance):
        assert trivial_explanation_cost(instance) == TRIVIAL_COST

    def test_first_source_record_produces_seventh_target_record(self, instance, reference):
        # The worked example of Section 3: F(S01 record) = T07 record.
        transformed = reference.transform_record(
            instance.schema.attributes, instance.source.row(0)
        )
        assert transformed == ("T07", "0006", "20130416", "A", "80", "k $", "IBM")

    def test_date_function_only_rewrites_sentinel_dates(self, reference):
        date_function = reference.functions["Date"]
        assert date_function.apply("99991231") == "20180701"
        assert date_function.apply("20130416") == "20130416"


class TestSearchOnRunningExample:
    @pytest.fixture(scope="class")
    def result(self, instance):
        return Affidavit(identity_configuration()).explain(instance)

    def test_reaches_reference_cost(self, result):
        assert result.cost == REFERENCE_COST

    def test_alignment_matches_reference(self, result):
        assert result.explanation.alignment == reference_alignment()

    def test_learned_concise_functions(self, result):
        functions = result.explanation.functions
        assert functions["Type"].is_identity
        assert functions["Org"].is_identity
        assert functions["Val"].meta_name in {"division", "multiplication"}
        assert functions["Val"].apply("80000") == "80"
        assert functions["Unit"].apply("USD") == "k $"
        assert functions["Date"].apply("99991231") == "20180701"
        assert functions["Date"].apply("20130416") == "20130416"

    def test_better_than_trivial(self, result):
        assert result.cost < result.trivial_cost
        assert result.compression_ratio == pytest.approx(REFERENCE_COST / TRIVIAL_COST)

    def test_generalises_to_unseen_record(self, instance, result):
        unseen = ("S99", "0099", "99991231", "E", "123000", "USD", "IBM")
        transformed = result.explanation.transform_record(instance.schema.attributes, unseen)
        # ID1/ID2 are value mappings and cannot generalise (None), but the
        # systematic attributes translate correctly.
        assert transformed[2] == "20180701"
        assert transformed[3] == "E"
        assert transformed[4] == "123"
        assert transformed[5] == "k $"
        assert transformed[6] == "IBM"
