"""Unit tests for ProblemInstance, Explanation and Proposition 3.6."""

import pytest

from repro.core import (
    Explanation,
    InvalidExplanationError,
    ProblemInstance,
    explanation_from_functions,
    trivial_explanation,
)
from repro.dataio import Schema, Table, TableError
from repro.functions import IDENTITY, ConstantValue, Division, ValueMapping, default_registry


@pytest.fixture
def tiny_instance():
    schema = Schema(["id", "amount", "unit"])
    source = Table(schema, [("a", "1000", "USD"), ("b", "2000", "USD"), ("c", "500", "USD")])
    target = Table(schema, [("b", "2", "kUSD"), ("a", "1", "kUSD"), ("z", "9", "kUSD")])
    return ProblemInstance(source=source, target=target, name="tiny")


class TestProblemInstance:
    def test_schema_must_match(self):
        source = Table(Schema(["a"]), [("1",)])
        target = Table(Schema(["b"]), [("1",)])
        with pytest.raises(TableError):
            ProblemInstance(source=source, target=target)

    def test_basic_properties(self, tiny_instance):
        assert tiny_instance.n_attributes == 3
        assert tiny_instance.n_source_records == 3
        assert tiny_instance.n_target_records == 3
        assert tiny_instance.delta == 0
        assert tiny_instance.attributes == ("id", "amount", "unit")

    def test_delta(self):
        schema = Schema(["a"])
        instance = ProblemInstance(
            source=Table(schema, [("1",), ("2",)]),
            target=Table(schema, [("1",)]),
        )
        assert instance.delta == 1

    def test_describe_mentions_name_and_sizes(self, tiny_instance):
        text = tiny_instance.describe()
        assert "tiny" in text and "|S|=3" in text

    def test_restricted_to(self, tiny_instance):
        restricted = tiny_instance.restricted_to(["amount"])
        assert restricted.n_attributes == 1
        assert restricted.source.row(0) == ("1000",)

    def test_with_registry(self, tiny_instance):
        registry = default_registry(include_dates=False)
        swapped = tiny_instance.with_registry(registry)
        assert "date_conversion" not in swapped.registry
        assert swapped.source is tiny_instance.source

    def test_default_registry_used(self, tiny_instance):
        assert "division" in tiny_instance.registry


class TestExplanationFromFunctions:
    def test_running_style_construction(self, tiny_instance):
        functions = {
            "id": ValueMapping({"a": "a", "b": "b"}),
            "amount": Division(1000),
            "unit": ConstantValue("kUSD"),
        }
        explanation = explanation_from_functions(tiny_instance, functions)
        assert explanation.core_size == 2
        assert explanation.deleted_source_ids == (2,)
        assert explanation.inserted_target_ids == (2,)
        assert explanation.is_valid(tiny_instance)
        # source record 0 ("a") maps to target record 1 ("a", "1", "kUSD")
        assert explanation.alignment[0] == 1

    def test_missing_function_raises(self, tiny_instance):
        with pytest.raises(InvalidExplanationError):
            explanation_from_functions(tiny_instance, {"id": IDENTITY})

    def test_inapplicable_function_sends_record_to_deleted(self, tiny_instance):
        functions = {
            "id": IDENTITY,
            "amount": Division(1000),
            "unit": ValueMapping({}),  # applicable to nothing
        }
        explanation = explanation_from_functions(tiny_instance, functions)
        assert explanation.core_size == 0
        assert len(explanation.deleted_source_ids) == 3
        assert len(explanation.inserted_target_ids) == 3

    def test_duplicate_images_consume_distinct_targets(self):
        schema = Schema(["x"])
        source = Table(schema, [("1",), ("1",), ("1",)])
        target = Table(schema, [("1",), ("1",)])
        instance = ProblemInstance(source=source, target=target)
        explanation = explanation_from_functions(instance, {"x": IDENTITY})
        assert explanation.core_size == 2
        assert len(explanation.deleted_source_ids) == 1
        assert explanation.inserted_target_ids == ()
        assert explanation.is_valid(instance)


class TestExplanationValidation:
    def test_trivial_explanation_is_valid(self, tiny_instance):
        explanation = trivial_explanation(tiny_instance)
        assert explanation.is_valid(tiny_instance)
        assert explanation.core_size == 0
        assert explanation.n_deleted == 3
        assert explanation.n_inserted == 3

    def test_overlapping_core_and_deleted_rejected(self, tiny_instance):
        explanation = Explanation(
            functions={a: IDENTITY for a in tiny_instance.schema},
            alignment={0: 0},
            deleted_source_ids=(0, 1, 2),
            inserted_target_ids=(1, 2),
        )
        with pytest.raises(InvalidExplanationError):
            explanation.validate(tiny_instance)

    def test_non_injective_alignment_rejected(self, tiny_instance):
        explanation = Explanation(
            functions={a: IDENTITY for a in tiny_instance.schema},
            alignment={0: 0, 1: 0},
            deleted_source_ids=(2,),
            inserted_target_ids=(1, 2),
        )
        with pytest.raises(InvalidExplanationError):
            explanation.validate(tiny_instance)

    def test_uncovered_target_rejected(self, tiny_instance):
        explanation = Explanation(
            functions={a: IDENTITY for a in tiny_instance.schema},
            alignment={},
            deleted_source_ids=(0, 1, 2),
            inserted_target_ids=(0, 1),  # target 2 is unaccounted for
        )
        with pytest.raises(InvalidExplanationError):
            explanation.validate(tiny_instance)

    def test_functions_must_reproduce_aligned_targets(self, tiny_instance):
        explanation = Explanation(
            functions={a: IDENTITY for a in tiny_instance.schema},
            alignment={0: 0},  # identity does not map source 0 to target 0
            deleted_source_ids=(1, 2),
            inserted_target_ids=(1, 2),
        )
        with pytest.raises(InvalidExplanationError):
            explanation.validate(tiny_instance)

    def test_missing_attribute_function_rejected(self, tiny_instance):
        explanation = Explanation(
            functions={"id": IDENTITY},
            alignment={},
            deleted_source_ids=(0, 1, 2),
            inserted_target_ids=(0, 1, 2),
        )
        with pytest.raises(InvalidExplanationError):
            explanation.validate(tiny_instance)


class TestExplanationBehaviour:
    def test_transform_record_generalises_to_unseen_rows(self, tiny_instance):
        functions = {
            "id": IDENTITY,
            "amount": Division(1000),
            "unit": ConstantValue("kUSD"),
        }
        explanation = explanation_from_functions(tiny_instance, functions)
        unseen = ("zzz", "7000", "USD")
        assert explanation.transform_record(tiny_instance.schema.attributes, unseen) == (
            "zzz", "7", "kUSD",
        )

    def test_transform_table(self, tiny_instance):
        explanation = explanation_from_functions(
            tiny_instance,
            {"id": IDENTITY, "amount": IDENTITY, "unit": IDENTITY},
        )
        transformed = explanation.transform_table(tiny_instance.source)
        assert transformed[0] == tiny_instance.source.row(0)

    def test_summary_lists_functions(self, tiny_instance):
        explanation = trivial_explanation(tiny_instance)
        text = explanation.summary()
        assert "attribute functions" in text
        assert "unit" in text

    def test_core_source_ids_sorted(self, tiny_instance):
        functions = {
            "id": IDENTITY,
            "amount": Division(1000),
            "unit": ConstantValue("kUSD"),
        }
        explanation = explanation_from_functions(tiny_instance, functions)
        assert explanation.core_source_ids == tuple(sorted(explanation.alignment))
