"""Tests of the column cache and the columnar evaluation engine.

Covers the unit behaviour of :class:`repro.core.ColumnCache` (value-map
reuse, LRU eviction, statistics, the identity fast path, non-cacheable
functions) and the headline guarantee of the engine: columnar evaluation
with cross-state memoization returns **bit-identical** costs and
explanations to the row-wise fallback on randomized snapshot pairs.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Affidavit,
    AttributeCodec,
    ColumnCache,
    ColumnCacheStats,
    NOT_APPLICABLE,
    NOT_APPLICABLE_CODE,
    StateEvaluator,
    identity_configuration,
    overlap_configuration,
)
from repro.core.blocking import transformed_column
from repro.dataio import Schema, Table
from repro.datagen import generate_problem_instance
from repro.datagen.datasets import load_dataset
from repro.functions import IDENTITY, ValueMapping
from repro.functions.affix import Prefixing
from repro.functions.arithmetic import Addition
from repro.linking.histogram import histogram_overlap, value_histogram


@pytest.fixture
def table() -> Table:
    schema = Schema(["num", "text"])
    return Table(schema, [
        ["1", "a"], ["2", "b"], ["1", "a"], ["3", "c"], ["2", "a"],
    ])


class TestColumnCache:
    def test_identity_is_zero_copy_and_counts_as_hit(self, table):
        cache = ColumnCache(table)
        transformed = cache.transformed("num", IDENTITY)
        assert transformed is table.column_view("num")
        assert cache.stats().hits == 1
        assert cache.stats().applications == 0

    def test_transformed_matches_rowwise_column(self, table):
        cache = ColumnCache(table)
        function = Addition(5)
        assert list(cache.transformed("num", function)) == transformed_column(
            table, "num", function
        )

    def test_inapplicable_cells_become_sentinel(self, table):
        cache = ColumnCache(table)
        transformed = cache.transformed("text", Addition(5))
        assert all(cell == NOT_APPLICABLE for cell in transformed)

    def test_value_map_is_reused_across_lookups(self, table):
        cache = ColumnCache(table)
        function = Addition(5)
        cache.transformed("num", function)
        first_applications = cache.stats().applications
        # Three distinct values -> three applications, not five.
        assert first_applications == 3
        cache.transformed("num", function)
        stats = cache.stats()
        assert stats.applications == first_applications  # nothing recomputed
        assert stats.hits == 1 and stats.misses == 1

    def test_lru_eviction_and_stats(self, table):
        cache = ColumnCache(table, max_entries=1)
        cache.transformed("num", Addition(1))
        cache.transformed("num", Addition(2))   # evicts Addition(1)
        assert len(cache) == 1
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.entries == 1
        assert stats.max_entries == 1
        # Re-requesting the evicted entry is a miss again.
        cache.transformed("num", Addition(1))
        assert cache.stats().misses == 3
        assert cache.stats().hits == 0

    def test_lru_order_is_by_recency(self, table):
        cache = ColumnCache(table, max_entries=2)
        cache.transformed("num", Addition(1))
        cache.transformed("num", Addition(2))
        cache.transformed("num", Addition(1))   # refresh Addition(1)
        cache.transformed("num", Addition(3))   # evicts Addition(2)
        assert cache.stats().evictions == 1
        cache.transformed("num", Addition(1))
        assert cache.stats().hits == 2          # still cached

    def test_value_mappings_are_not_cached(self, table):
        cache = ColumnCache(table)
        mapping = ValueMapping({"1": "x", "2": "y"})
        transformed = cache.transformed("num", mapping)
        assert transformed == ["x", "y", "x", NOT_APPLICABLE, "y"]
        assert len(cache) == 0

    def test_disabled_cache_is_rowwise(self, table):
        cache = ColumnCache(table, enabled=False)
        function = Addition(5)
        first = cache.transformed("num", function)
        second = cache.transformed("num", function)
        assert first == second == transformed_column(table, "num", function)
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 2
        assert stats.applications == 2 * table.n_rows
        assert len(cache) == 0

    def test_clear_drops_entries_keeps_counters(self, table):
        cache = ColumnCache(table)
        cache.transformed("num", Addition(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1

    def test_max_entries_must_be_positive(self, table):
        with pytest.raises(ValueError):
            ColumnCache(table, max_entries=0)

    def test_stats_as_dict_round_trip(self, table):
        cache = ColumnCache(table)
        cache.transformed("num", Addition(1))
        payload = cache.stats().as_dict()
        assert payload["misses"] == 1
        assert payload["entries"] == 1
        assert 0.0 <= payload["hit_rate"] <= 1.0
        assert payload["applications"] == 3

    def test_hit_rate_of_empty_stats_is_zero(self):
        assert ColumnCacheStats().hit_rate == 0.0


class TestDictionaryEncoding:
    def test_codec_is_shared_across_columns_of_one_attribute(self, table):
        cache = ColumnCache(table)
        source_codes = cache.source_value_codes("num")
        other = ["1", "3", "9"]
        other_codes = cache.encoded_column("num", other)
        column = table.column_view("num")
        # Equal values <-> equal codes, across the source column and the
        # externally encoded one.
        for i, value in enumerate(column):
            for j, other_value in enumerate(other):
                assert (value == other_value) == (source_codes[i] == other_codes[j])

    def test_transformed_codes_mirror_transformed_strings(self, table):
        cache = ColumnCache(table)
        function = Addition(5)
        strings = list(cache.transformed("num", function))
        codes = list(cache.transformed_codes("num", function))
        assert len(strings) == len(codes)
        seen = {}
        for value, code in zip(strings, codes):
            assert seen.setdefault(value, code) == code
            assert (value == NOT_APPLICABLE) == (code == NOT_APPLICABLE_CODE)

    def test_inapplicable_cells_get_the_reserved_code(self, table):
        cache = ColumnCache(table)
        codes = cache.transformed_codes("text", Addition(1))  # fails on text
        assert set(codes) == {NOT_APPLICABLE_CODE}
        assert cache.codec("text").code_of(NOT_APPLICABLE) == NOT_APPLICABLE_CODE

    def test_identity_codes_are_the_source_codes(self, table):
        cache = ColumnCache(table)
        assert cache.transformed_codes("num", IDENTITY) is cache.source_value_codes("num")

    def test_code_arrays_are_cached_per_entry(self, table):
        cache = ColumnCache(table)
        function = Addition(5)
        first = cache.transformed_codes("num", function)
        assert cache.transformed_codes("num", function) is first

    def test_eviction_drops_code_arrays(self, table):
        cache = ColumnCache(table, max_entries=1)
        first = cache.transformed_codes("num", Addition(1))
        cache.transformed_codes("num", Addition(2))  # evicts Addition(1)
        assert cache.stats().evictions == 1
        rebuilt = cache.transformed_codes("num", Addition(1))
        assert rebuilt is not first
        assert list(rebuilt) == list(first)

    def test_encoded_column_is_cached_by_column_object(self, table):
        cache = ColumnCache(table)
        column = table.column_view("num")
        first = cache.encoded_column("num", column)
        assert cache.encoded_column("num", column) is first

    def test_code_histograms_match_string_histograms(self, table):
        cache = ColumnCache(table)
        function = Prefixing("p-")
        column = table.column_view("text")
        string_slices = [value_histogram(column[:3]), value_histogram(column[3:])]
        string_result = cache.transformed_histograms("text", function, string_slices)

        source_codes = cache.source_value_codes("text")
        code_slices = [value_histogram(source_codes[:3]), value_histogram(source_codes[3:])]
        code_result = cache.transformed_code_histograms("text", function, code_slices)
        # Same multiset of counts per slice (codes are a bijection on values).
        for strings, codes in zip(string_result, code_result):
            assert sorted(strings.values()) == sorted(codes.values())
            assert len(strings) == len(codes)

    def test_code_histograms_respect_restriction(self, table):
        cache = ColumnCache(table)
        source_codes = cache.source_value_codes("num")
        slices = [value_histogram(source_codes)]
        unrestricted = cache.transformed_code_histograms("num", IDENTITY, slices)
        wanted = {source_codes[0]}
        restricted = cache.transformed_code_histograms(
            "num", IDENTITY, slices, restrict_to=[wanted]
        )
        assert set(restricted[0]) == wanted
        assert restricted[0][source_codes[0]] == unrestricted[0][source_codes[0]]

    def test_codes_inactive_when_disabled_or_switched_off(self, table):
        assert ColumnCache(table).codes_active
        assert not ColumnCache(table, codes=False).codes_active
        assert not ColumnCache(table, enabled=False).codes_active

    def test_evaluator_threads_the_codes_flag(self, table):
        schema = Schema(["num", "text"])
        from repro.core import ProblemInstance
        instance = ProblemInstance(source=table, target=Table(schema, [["1", "a"]]))
        assert StateEvaluator(instance).column_cache.codes_active
        assert not StateEvaluator(
            instance, blocking_codes=False
        ).column_cache.codes_active
        assert not StateEvaluator(instance, columnar=False).column_cache.codes_active

    def test_blocking_cache_info_counts_hits_and_misses(self, table):
        from repro.core import ProblemInstance, SearchState
        schema = Schema(["num", "text"])
        instance = ProblemInstance(source=table, target=Table(schema, [["1", "a"]]))
        evaluator = StateEvaluator(instance)
        state = SearchState.empty(instance.schema).extend("num", IDENTITY)
        evaluator.blocking(state)
        evaluator.blocking(state)
        info = evaluator.blocking_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["entries"] == 1
        assert info["max_entries"] == 64


class TestTransformedHistograms:
    def test_matches_per_cell_histograms(self, table):
        cache = ColumnCache(table)
        function = Prefixing("p")
        column = table.column_view("text")
        slices = [value_histogram(column[:3]), value_histogram(column[3:])]
        results = cache.transformed_histograms("text", function, slices)
        for value_counts, histogram in zip(slices, results):
            expected = value_histogram(
                function.apply(value)
                for value, count in value_counts.items()
                for _ in range(count)
            )
            assert histogram == expected

    def test_restriction_preserves_overlap(self, table):
        cache = ColumnCache(table)
        function = Prefixing("p")
        column = table.column_view("text")
        source_slices = [value_histogram(column)]
        target_histogram = value_histogram(["pa", "pa", "pz"])
        unrestricted = cache.transformed_histograms("text", function, source_slices)
        restricted = cache.transformed_histograms(
            "text", function, source_slices,
            restrict_to=[target_histogram.keys()],
        )
        assert histogram_overlap(unrestricted[0], target_histogram) == \
            histogram_overlap(restricted[0], target_histogram)

    def test_identity_histograms_equal_slices(self, table):
        cache = ColumnCache(table)
        slices = [value_histogram(table.column_view("text"))]
        results = cache.transformed_histograms("text", IDENTITY, slices)
        assert results[0] == slices[0]


def _random_instances():
    """Small randomized snapshot pairs covering several datasets and noise
    levels (kept laptop-fast; the benchmark exercises the large ones)."""
    cases = []
    for dataset, records, eta, tau, seed in [
        ("flight-500k", 160, 0.3, 0.3, 1),
        ("flight-500k", 200, 0.1, 0.5, 2),
        ("iris", 150, 0.2, 0.2, 3),
        ("abalone", 180, 0.4, 0.1, 4),
    ]:
        table = load_dataset(dataset, records, seed=seed)
        generated = generate_problem_instance(table, eta=eta, tau=tau, seed=seed)
        cases.append(pytest.param(generated.instance, id=f"{dataset}-s{seed}"))
    return cases


class TestColumnarEquivalence:
    """The columnar engine must be a pure optimisation: same explanations,
    same costs, same search trajectory as the row-wise fallback."""

    @pytest.mark.parametrize("instance", _random_instances())
    def test_full_search_is_bit_identical(self, instance):
        columnar = Affidavit(identity_configuration()).explain(instance)
        rowwise = Affidavit(
            identity_configuration(columnar_cache=False)
        ).explain(instance)
        assert columnar.cost == rowwise.cost
        assert columnar.explanation.functions == rowwise.explanation.functions
        assert columnar.explanation.n_inserted == rowwise.explanation.n_inserted
        assert columnar.explanation.n_deleted == rowwise.explanation.n_deleted
        assert columnar.explanation.core_source_ids == rowwise.explanation.core_source_ids
        assert columnar.expansions == rowwise.expansions
        assert columnar.generated_states == rowwise.generated_states

    def test_overlap_configuration_is_bit_identical(self):
        table = load_dataset("flight-500k", 160, seed=5)
        instance = generate_problem_instance(table, eta=0.2, tau=0.3, seed=5).instance
        columnar = Affidavit(overlap_configuration()).explain(instance)
        rowwise = Affidavit(
            overlap_configuration(columnar_cache=False)
        ).explain(instance)
        assert columnar.cost == rowwise.cost
        assert columnar.explanation.functions == rowwise.explanation.functions

    def test_result_and_progress_carry_cache_stats(self, running_example):
        snapshots = []
        config = identity_configuration(progress_callback=snapshots.append)
        result = Affidavit(config).explain(running_example)
        assert result.cache_stats is not None
        assert result.cache_stats.lookups > 0
        assert result.cache_stats.hit_rate > 0.0
        assert snapshots, "progress callback never fired"
        last = snapshots[-1]
        assert last.cache_hits + last.cache_misses > 0
        assert 0.0 <= last.cache_hit_rate <= 1.0

    def test_rowwise_engine_reports_no_cached_entries(self, running_example):
        config = identity_configuration(columnar_cache=False)
        result = Affidavit(config).explain(running_example)
        assert result.cache_stats is not None
        assert result.cache_stats.entries == 0


class TestDictionaryAndCodecEdgeCases:
    """Degenerate and adversarial value domains through the two encoding
    layers: ``Column.dictionary()`` (column-local) and ``AttributeCodec``
    (shared per-attribute code space).  Surfaced by the fuzzing harness —
    kept as targeted unit tests so the properties stay pinned."""

    def test_empty_column_dictionary(self):
        table = Table(Schema(["A"]), [])
        codes, codebook = table.column_view("A").dictionary()
        assert codes == []
        assert codebook == {}
        assert table.column_view("A").distinct_count() == 0

    def test_single_distinct_value_column(self):
        table = Table(Schema(["A"]), [["same"], ["same"], ["same"]])
        column = table.column_view("A")
        codes, codebook = column.dictionary()
        assert codes == [0, 0, 0]
        assert codebook == {"same": 0}
        assert column.distinct_count() == 1

    def test_dictionary_decodes_back_to_the_column(self):
        table = Table(Schema(["A"]), [["x"], ["y"], ["x"], [""], ["y"]])
        column = table.column_view("A")
        codes, codebook = column.dictionary()
        decode = {code: value for value, code in codebook.items()}
        assert [decode[code] for code in codes] == list(column)
        # Injective: distinct values get distinct codes, densely numbered.
        assert sorted(codebook.values()) == list(range(len(codebook)))

    def test_all_sentinel_transformed_column_is_one_code(self, table):
        # A function inapplicable everywhere yields an all-NOT_APPLICABLE
        # column whose codes collapse onto the single reserved code.
        cache = ColumnCache(table)
        transformed = cache.transformed("text", Addition(5))
        assert set(transformed) == {NOT_APPLICABLE}
        codec = cache.codec("text")
        assert {codec.encode(cell) for cell in transformed} == {
            NOT_APPLICABLE_CODE
        }

    def test_codec_reserves_code_zero_for_the_sentinel(self):
        codec = AttributeCodec()
        assert codec.encode(NOT_APPLICABLE) == NOT_APPLICABLE_CODE
        assert codec.encode("anything") != NOT_APPLICABLE_CODE
        # Pre-assigned: the sentinel is known before any value is seen.
        assert len(codec) >= 1
        assert codec.code_of(NOT_APPLICABLE) == NOT_APPLICABLE_CODE

    def test_codec_is_stable_and_bijective_over_unicode(self):
        values = [
            "", " ", "\t", "NULL", "None",
            "Straße", "STRASSE", "ﬃ", "ﬁre",
            "ΚΌΣΜΕ", "κόσμε",
            "\U0001d518\U0001d52b\U0001d526\U0001d520\U0001d52c\U0001d521\U0001d522",
            " ", "‮tfel", "á", "á",
            "\U0001f642", "\U0001f642\U0001f642", "﻿", "&#x27;&#x27;",
        ]
        codec = AttributeCodec()
        first = [codec.encode(value) for value in values]
        second = [codec.encode(value) for value in values]
        assert first == second, "codes must be stable across encodings"
        assert len(set(first)) == len(values), "distinct values, distinct codes"
        assert NOT_APPLICABLE_CODE not in first

    def test_codec_distinguishes_surrogate_and_lookalike_values(self):
        # Lone surrogates survive CSV-of-weird-data paths via
        # surrogateescape; they must be ordinary, distinct values.
        values = ["\ud800", "\udfff", "\U000103ff", "<not-applicable>"]
        codec = AttributeCodec()
        codes = [codec.encode(value) for value in values]
        assert len(set(codes)) == len(values)
        assert NOT_APPLICABLE_CODE not in codes
        for value, code in zip(values, codes):
            assert codec.code_of(value) == code

    def test_unicode_column_dictionary_round_trip(self):
        # NFC/NFD lookalikes ("á" vs "á") stay distinct: the
        # engines compare byte-for-byte, never normalizing silently.
        rows = [["Straße"], ["STRASSE"], ["Straße"],
                ["\U0001f642"], ["á"], ["á"], ["\U0001f642"]]
        table = Table(Schema(["A"]), rows)
        column = table.column_view("A")
        codes, codebook = column.dictionary()
        assert len(codes) == len(rows)
        assert len(codebook) == 5
        decode = {code: value for value, code in codebook.items()}
        assert [decode[code] for code in codes] == [row[0] for row in rows]
