"""Tests of the fuzzing corpus format (:mod:`repro.fuzz.corpus`).

Corpus entries are the replay contract of the fuzzer: a minimized finding is
committed as JSON and must round-trip byte-for-byte forever.  These tests pin
the serialization format, the content-addressed file naming, and the
validation that keeps malformed entries out of the suite.
"""

from __future__ import annotations

import json

import pytest

from repro.dataio import Schema, Table, read_csv_text
from repro.fuzz import (
    CORPUS_SCHEMA_VERSION,
    CorpusEntry,
    CorpusError,
    FINDINGS_DIR,
    KIND_PAYLOAD,
    KIND_SNAPSHOT,
    SEEDS_DIR,
    SnapshotPair,
    load_corpus,
    load_entry,
    save_entry,
)


@pytest.fixture
def pair() -> SnapshotPair:
    return SnapshotPair(
        source=read_csv_text("Name,Val\nalpha,1\nbeta,2\n"),
        target=read_csv_text("Name,Val\nALPHA,1\ngamma,3\n"),
    )


class TestSnapshotPair:
    def test_rejects_schema_mismatch(self):
        with pytest.raises(CorpusError, match="share a schema"):
            SnapshotPair(
                source=Table(Schema(("A",)), [("1",)]),
                target=Table(Schema(("B",)), [("1",)]),
            )

    def test_size_measures(self, pair):
        assert pair.n_rows == 4
        assert pair.n_columns == 2
        assert "2+2 rows" in pair.describe()

    def test_copies_are_independent(self, pair):
        source, target = pair.copies()
        assert source is not pair.source
        assert list(source.rows()) == list(pair.source.rows())
        assert list(target.rows()) == list(pair.target.rows())


class TestCorpusEntry:
    def test_snapshot_round_trip(self, pair):
        entry = CorpusEntry.from_pair(
            pair, seed=7, oracles=("engines_agree",), note="demo",
            provenance=("drop_rows", "corrupt_cells"),
        )
        restored = CorpusEntry.from_dict(entry.to_dict())
        assert restored == entry
        rebuilt = restored.pair()
        assert list(rebuilt.source.rows()) == list(pair.source.rows())
        assert list(rebuilt.target.rows()) == list(pair.target.rows())

    def test_payload_round_trip_preserves_bytes(self):
        # Deliberately broken JSON with unicode — must survive verbatim.
        text = '{"version": "affidavit.request/v1", "søurce": '
        entry = CorpusEntry.from_payload(text, seed=3)
        restored = CorpusEntry.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        )
        assert restored.payload_text == text
        assert restored == entry

    def test_name_does_not_affect_equality_or_hash_content(self, pair):
        a = CorpusEntry.from_pair(pair, name="one")
        b = CorpusEntry.from_pair(pair, name="two")
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_pair_on_payload_entry_raises(self):
        entry = CorpusEntry.from_payload("{}")
        with pytest.raises(CorpusError, match="no snapshot pair"):
            entry.pair()

    def test_rejects_unknown_kind_and_missing_fields(self):
        with pytest.raises(CorpusError, match="unknown corpus entry kind"):
            CorpusEntry(kind="weird", payload_text="{}")
        with pytest.raises(CorpusError, match="source_csv"):
            CorpusEntry(kind=KIND_SNAPSHOT, source_csv="A\n1\n")
        with pytest.raises(CorpusError, match="payload_text"):
            CorpusEntry(kind=KIND_PAYLOAD)

    def test_from_dict_rejects_foreign_versions_and_fields(self, pair):
        payload = CorpusEntry.from_pair(pair).to_dict()
        assert payload["schema_version"] == CORPUS_SCHEMA_VERSION
        payload_v9 = dict(payload, schema_version="affidavit.fuzz-entry/v9")
        with pytest.raises(CorpusError, match="schema_version"):
            CorpusEntry.from_dict(payload_v9)
        payload_extra = dict(payload, surprise=True)
        with pytest.raises(CorpusError, match="unknown corpus entry fields"):
            CorpusEntry.from_dict(payload_extra)
        payload_bad_seed = dict(payload, seed="zero")
        with pytest.raises(CorpusError, match="seed"):
            CorpusEntry.from_dict(payload_bad_seed)


class TestCorpusFiles:
    def test_save_is_idempotent_and_content_addressed(self, tmp_path, pair):
        entry = CorpusEntry.from_pair(pair, note="finding")
        first = save_entry(entry, tmp_path)
        second = save_entry(entry, tmp_path)
        assert first == second
        assert entry.content_hash() in first.name
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert load_entry(first) == entry

    def test_load_corpus_walks_seeds_and_findings(self, tmp_path, pair):
        seed_entry = CorpusEntry.from_pair(pair)
        finding_entry = CorpusEntry.from_payload("not json at all")
        save_entry(seed_entry, tmp_path / SEEDS_DIR)
        save_entry(finding_entry, tmp_path / FINDINGS_DIR)
        entries = load_corpus(tmp_path)
        assert len(entries) == 2
        assert seed_entry in entries and finding_entry in entries
        # Entries are named after their files so failures are reportable.
        assert all(entry.name for entry in entries)

    def test_load_entry_rejects_malformed_file(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(CorpusError):
            load_entry(bad)
